"""ORIGAMI: output-space sampling of representative maximal patterns
(Hasan et al., ICDM 2007).

ORIGAMI does not enumerate the frequent-pattern space.  Instead it performs
random walks in the pattern lattice: starting from a random frequent edge it
repeatedly adds a random frequent extension until no extension is frequent
(a randomly reached *maximal* pattern), then keeps an α-orthogonal subset of
the sampled maximal patterns as the representative set.  The result is a
scattered sample of the output space — which is exactly why the SkinnyMine
evaluation (Figures 9–10) shows ORIGAMI returning a few medium-sized patterns
and mostly small ones, missing the injected skinny patterns.

This reimplementation mirrors that behaviour: ``num_walks`` random maximal
patterns are sampled with frequency checked against the data at every step,
then near-duplicate samples are removed with a similarity threshold (the
α-orthogonality filter).
"""

from __future__ import annotations

import random
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.baselines.common import MinedPattern
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.labeled_graph import LabeledGraph, VertexId

EdgeKey = Tuple[VertexId, VertexId]


def _edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    return (u, v) if u < v else (v, u)


class OrigamiSampler:
    """Sample representative maximal frequent patterns by random walks."""

    def __init__(
        self,
        graph: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int = 2,
        num_walks: int = 30,
        alpha: float = 0.6,
        max_pattern_edges: int = 30,
        seed: Optional[int] = None,
        support_measure: Optional[SupportMeasure] = None,
    ) -> None:
        if num_walks < 1:
            raise ValueError("num_walks must be at least 1")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        self._context = MiningContext(graph, min_support, support_measure)
        self._num_walks = num_walks
        self._alpha = alpha
        self._max_pattern_edges = max_pattern_edges
        self._rng = random.Random(seed)
        self.elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def _support_of_occurrences(
        self, occurrences: Sequence[Tuple[int, FrozenSet[EdgeKey]]]
    ) -> int:
        if self._context.support_measure is SupportMeasure.TRANSACTIONS:
            return len({index for index, _ in occurrences})
        return len(
            {
                (index, frozenset(v for edge in edges for v in edge))
                for index, edges in occurrences
            }
        )

    def _frequent_edge_seeds(self) -> Dict[Tuple, List[Tuple[int, FrozenSet[EdgeKey]]]]:
        grouped: Dict[Tuple, List[Tuple[int, FrozenSet[EdgeKey]]]] = {}
        for graph_index in self._context.graph_indices():
            graph = self._context.graph(graph_index)
            for edge in graph.edges():
                labels = tuple(
                    sorted((str(graph.label_of(edge.u)), str(graph.label_of(edge.v))))
                )
                grouped.setdefault(labels, []).append(
                    (graph_index, frozenset({_edge_key(edge.u, edge.v)}))
                )
        return {
            key: occurrences
            for key, occurrences in grouped.items()
            if self._support_of_occurrences(occurrences) >= self._context.min_support
        }

    def _random_extension(
        self, occurrences: List[Tuple[int, FrozenSet[EdgeKey]]]
    ) -> Optional[List[Tuple[int, FrozenSet[EdgeKey]]]]:
        """Pick a random frequent one-edge extension of the current pattern.

        Extensions are proposed from a randomly chosen occurrence and then
        re-evaluated across all occurrences (each occurrence either contains
        a matching extension edge or is dropped); the extension is accepted
        only if enough occurrences survive.
        """
        graph_index, edges = self._rng.choice(occurrences)
        graph = self._context.graph(graph_index)
        vertices = {v for edge in edges for v in edge}
        proposals: List[Tuple[str, str, EdgeKey]] = []
        for vertex in vertices:
            for neighbor in graph.neighbors(vertex):
                new_edge = _edge_key(vertex, neighbor)
                if new_edge in edges:
                    continue
                proposals.append(
                    (
                        str(graph.label_of(vertex)),
                        str(graph.label_of(neighbor)),
                        new_edge,
                    )
                )
        if not proposals:
            return None
        self._rng.shuffle(proposals)
        for anchor_label, new_label, _ in proposals:
            extended: List[Tuple[int, FrozenSet[EdgeKey]]] = []
            for occ_index, occ_edges in occurrences:
                occ_graph = self._context.graph(occ_index)
                occ_vertices = {v for edge in occ_edges for v in edge}
                found = None
                for vertex in occ_vertices:
                    if str(occ_graph.label_of(vertex)) != anchor_label:
                        continue
                    for neighbor in occ_graph.neighbors(vertex):
                        edge_candidate = _edge_key(vertex, neighbor)
                        if edge_candidate in occ_edges:
                            continue
                        if str(occ_graph.label_of(neighbor)) == new_label:
                            found = edge_candidate
                            break
                    if found:
                        break
                if found:
                    extended.append((occ_index, occ_edges | {found}))
            if self._support_of_occurrences(extended) >= self._context.min_support:
                return extended
        return None

    # ------------------------------------------------------------------ #
    def mine(self) -> List[MinedPattern]:
        """Sample maximal frequent patterns and return an α-orthogonal subset."""
        started = time.perf_counter()
        seeds = self._frequent_edge_seeds()
        if not seeds:
            self.elapsed_seconds = time.perf_counter() - started
            return []

        samples: List[MinedPattern] = []
        seed_keys = list(seeds)
        for _ in range(self._num_walks):
            key = self._rng.choice(seed_keys)
            occurrences = list(seeds[key])
            while len(next(iter(occurrences))[1]) < self._max_pattern_edges:
                extended = self._random_extension(occurrences)
                if extended is None:
                    break
                occurrences = extended
            graph_index, edges = self._rng.choice(occurrences)
            pattern = (
                self._context.graph(graph_index).edge_subgraph(sorted(edges)).compact()[0]
            )
            samples.append(
                MinedPattern(pattern, self._support_of_occurrences(occurrences))
            )

        representatives = self._alpha_orthogonal(samples)
        self.elapsed_seconds = time.perf_counter() - started
        return representatives

    def _alpha_orthogonal(self, samples: List[MinedPattern]) -> List[MinedPattern]:
        """Greedy α-orthogonal filtering by label-multiset similarity."""

        def profile(pattern: MinedPattern) -> Dict[str, int]:
            histogram: Dict[str, int] = {}
            for vertex in pattern.graph.vertices():
                label = str(pattern.graph.label_of(vertex))
                histogram[label] = histogram.get(label, 0) + 1
            return histogram

        def similarity(left: Dict[str, int], right: Dict[str, int]) -> float:
            keys = set(left) | set(right)
            if not keys:
                return 1.0
            overlap = sum(min(left.get(k, 0), right.get(k, 0)) for k in keys)
            total = sum(max(left.get(k, 0), right.get(k, 0)) for k in keys)
            return overlap / total if total else 1.0

        kept: List[MinedPattern] = []
        kept_profiles: List[Dict[str, int]] = []
        for sample in sorted(samples, key=lambda item: -item.num_vertices):
            candidate_profile = profile(sample)
            if all(
                similarity(candidate_profile, existing) <= self._alpha
                for existing in kept_profiles
            ):
                kept.append(sample)
                kept_profiles.append(candidate_profile)
        return kept or samples[:1]
