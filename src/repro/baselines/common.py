"""Shared infrastructure for the baseline miners.

All baselines return :class:`MinedPattern` objects (a pattern graph plus its
support and an optional algorithm-specific score) so the analysis layer can
build the paper's pattern-size distributions (Figures 4–10) uniformly.

:class:`PatternGrowthMiner` is the generic frequent-connected-subgraph miner
used by the gSpan and MoSS adapters: occurrence-list based pattern growth with
exact duplicate elimination.  It supports all three support measures of
:class:`repro.core.database.MiningContext` and optional caps on pattern size
and running time (the paper repeatedly notes that complete miners "fail
halfway due to intractability"; the caps let the benchmark harness reproduce
that behaviour without hanging the test machine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.database import MiningContext, SupportMeasure
from repro.graph.canonical import wl_signature
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, VertexId

EdgeKey = Tuple[VertexId, VertexId]
Occurrence = Tuple[int, FrozenSet[EdgeKey]]


@dataclass
class MinedPattern:
    """A pattern reported by one of the baseline miners."""

    graph: LabeledGraph
    support: int
    score: float = 0.0

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices()

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges()

    def __repr__(self) -> str:
        return (
            f"<MinedPattern |V|={self.num_vertices} |E|={self.num_edges} "
            f"support={self.support}>"
        )


class IsomorphismRegistry:
    """Exact duplicate detection keyed by WL signature (as in LevelGrow)."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple, List[LabeledGraph]] = {}

    def index_of(self, pattern: LabeledGraph) -> Optional[int]:
        bucket = self._buckets.get(wl_signature(pattern), [])
        for index, member in enumerate(bucket):
            if are_isomorphic(pattern, member):
                return id(member)
        return None

    def add(self, pattern: LabeledGraph) -> bool:
        """Add ``pattern``; return True if it is new."""
        signature = wl_signature(pattern)
        bucket = self._buckets.setdefault(signature, [])
        for member in bucket:
            if are_isomorphic(pattern, member):
                return False
        bucket.append(pattern)
        return True


def _edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    return (u, v) if u < v else (v, u)


def occurrence_support(
    context: MiningContext, pattern: LabeledGraph, occurrences: Sequence[Occurrence]
) -> int:
    """Support of a pattern from its edge-set occurrences under the context measure."""
    if context.support_measure is SupportMeasure.TRANSACTIONS:
        return len({index for index, _ in occurrences})
    if context.support_measure is SupportMeasure.MNI:
        # Edge-set occurrences lose the vertex correspondence needed for MNI;
        # approximate with the number of distinct vertex images, which is an
        # upper bound and coincides for automorphism-free patterns.
        return len(
            {
                (index, frozenset(v for edge in edges for v in edge))
                for index, edges in occurrences
            }
        )
    return len(
        {
            (index, frozenset(v for edge in edges for v in edge))
            for index, edges in occurrences
        }
    )


@dataclass
class PatternGrowthResult:
    """Output of :class:`PatternGrowthMiner` plus run accounting."""

    patterns: List[MinedPattern] = field(default_factory=list)
    completed: bool = True
    elapsed_seconds: float = 0.0
    patterns_explored: int = 0


class PatternGrowthMiner:
    """Generic complete frequent-connected-subgraph miner (pattern growth).

    Grows patterns one data edge at a time from single-edge seeds, keeping
    exact occurrence lists.  Duplicate patterns are collapsed through an
    isomorphism registry.  The miner is *complete* up to ``max_edges`` and the
    optional time budget: when the budget is exhausted mid-way the result is
    flagged ``completed=False``, which the runtime-comparison benchmarks use
    to reproduce the paper's ">18000 seconds / did not finish" rows.
    """

    def __init__(
        self,
        context: MiningContext,
        max_edges: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = context
        self._max_edges = max_edges
        self._time_budget = time_budget_seconds
        self._max_patterns = max_patterns

    def mine(self) -> PatternGrowthResult:
        started = time.perf_counter()
        result = PatternGrowthResult()

        def out_of_budget() -> bool:
            return (
                self._time_budget is not None
                and time.perf_counter() - started > self._time_budget
            )

        # Seed: single-edge patterns grouped by their (label, edge-label, label) key.
        current: Dict[Tuple, Dict[Occurrence, None]] = {}
        representative: Dict[Tuple, Tuple[int, FrozenSet[EdgeKey]]] = {}
        for graph_index in self._context.graph_indices():
            graph = self._context.graph(graph_index)
            for edge in graph.edges():
                labels = tuple(
                    sorted((str(graph.label_of(edge.u)), str(graph.label_of(edge.v))))
                )
                key = ("seed", labels, str(edge.label) if edge.label else "")
                edges = frozenset({_edge_key(edge.u, edge.v)})
                current.setdefault(key, {})[(graph_index, edges)] = None
                representative.setdefault(key, (graph_index, edges))

        registry = IsomorphismRegistry()
        size = 1
        while current:
            if out_of_budget():
                result.completed = False
                break
            next_level: Dict[Tuple, Dict[Occurrence, None]] = {}
            next_representative: Dict[Tuple, Tuple[int, FrozenSet[EdgeKey]]] = {}
            for key, occurrence_map in current.items():
                if out_of_budget():
                    result.completed = False
                    break
                occurrences = list(occurrence_map)
                graph_index, sample_edges = representative[key]
                sample_graph = self._context.graph(graph_index)
                pattern = sample_graph.edge_subgraph(sorted(sample_edges)).compact()[0]
                support = occurrence_support(self._context, pattern, occurrences)
                result.patterns_explored += 1
                if not self._context.is_frequent(support):
                    continue
                if registry.add(pattern):
                    result.patterns.append(MinedPattern(pattern, support))
                    if (
                        self._max_patterns is not None
                        and len(result.patterns) >= self._max_patterns
                    ):
                        result.completed = False
                        result.elapsed_seconds = time.perf_counter() - started
                        return result
                if self._max_edges is not None and size >= self._max_edges:
                    continue
                for occurrence_index, edges in occurrences:
                    graph = self._context.graph(occurrence_index)
                    vertices = {v for edge in edges for v in edge}
                    for vertex in vertices:
                        for neighbor in graph.neighbors(vertex):
                            new_edge = _edge_key(vertex, neighbor)
                            if new_edge in edges:
                                continue
                            extended = edges | {new_edge}
                            extended_pattern = graph.edge_subgraph(sorted(extended))
                            compacted, _ = extended_pattern.compact()
                            new_key = wl_signature(compacted)
                            next_level.setdefault(("grown", size + 1, new_key), {})[
                                (occurrence_index, extended)
                            ] = None
                            next_representative.setdefault(
                                ("grown", size + 1, new_key),
                                (occurrence_index, extended),
                            )
            current = next_level
            representative = next_representative
            size += 1

        result.elapsed_seconds = time.perf_counter() - started
        return result
