"""Reimplementations of the miners SkinnyMine is compared against.

The paper's evaluation (Section 6) compares against five systems obtained
from their original authors: SUBDUE, SEuS, MoSS, SpiderMine and ORIGAMI,
plus gSpan as the canonical complete transaction-setting miner.  The original
C++/Java binaries are not redistributable, so this package reimplements the
published core idea of each system in Python (see DESIGN.md for the
substitution rationale).  Absolute runtimes are not comparable to the paper's
testbed, but the qualitative behaviour each baseline exhibits in the paper —
which pattern sizes it finds, when it stops scaling — is preserved.

* :mod:`repro.baselines.gspan` — complete frequent subgraph mining by DFS-code
  pattern growth (graph-transaction setting).
* :mod:`repro.baselines.moss` — complete single-graph miner (MoSS-style
  enumerate-and-check with embedding-based support).
* :mod:`repro.baselines.spidermine` — top-K large pattern mining with
  r-spiders, random seed selection and spider merging (SpiderMine).
* :mod:`repro.baselines.subdue` — MDL/compression-guided beam search
  (SUBDUE).
* :mod:`repro.baselines.seus` — summary-graph based candidate generation
  (SEuS).
* :mod:`repro.baselines.origami` — output-space sampling of maximal patterns
  (ORIGAMI).
"""

from repro.baselines.common import MinedPattern
from repro.baselines.gspan import GSpanMiner
from repro.baselines.moss import MossMiner
from repro.baselines.origami import OrigamiSampler
from repro.baselines.seus import SeusMiner
from repro.baselines.spidermine import SpiderMiner
from repro.baselines.subdue import SubdueMiner

__all__ = [
    "MinedPattern",
    "GSpanMiner",
    "MossMiner",
    "OrigamiSampler",
    "SeusMiner",
    "SpiderMiner",
    "SubdueMiner",
]
