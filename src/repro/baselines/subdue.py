"""SUBDUE: compression (MDL) guided substructure discovery (Holder et al., 1994).

SUBDUE performs a beam search over substructures, scoring each candidate by
how well it compresses the input graph under the minimum-description-length
principle: a pattern that is both reasonably large and very frequent replaces
many occurrences with a single super-vertex and therefore compresses well.
The practical consequence — highlighted repeatedly in the SkinnyMine paper —
is that SUBDUE reports *small patterns with relatively high frequency* and
shifts towards even smaller patterns as the frequency of small substructures
increases (Figures 6–8).

This reimplementation keeps the published algorithm shape:

* candidates start from single frequent edges;
* a beam of the best ``beam_width`` candidates is extended by one data edge
  per iteration;
* candidates are scored with the standard MDL approximation
  ``score = support * (|E(P)| ) - |E(P)| - |V(P)|`` (bits saved ≈ covered
  edges minus the cost of describing the pattern once), and the best
  ``max_best`` substructures over the whole run are returned;
* ``iterations`` bounds the search depth, as in the original system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple, Union

from repro.baselines.common import IsomorphismRegistry, MinedPattern
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.labeled_graph import LabeledGraph, VertexId

EdgeKey = Tuple[VertexId, VertexId]
Occurrence = Tuple[int, FrozenSet[EdgeKey]]


def _edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    return (u, v) if u < v else (v, u)


@dataclass
class _Candidate:
    pattern: LabeledGraph
    occurrences: List[Occurrence]
    support: int
    score: float


class SubdueMiner:
    """Beam-search substructure discovery guided by graph compression."""

    def __init__(
        self,
        graph: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int = 2,
        beam_width: int = 4,
        iterations: int = 10,
        max_best: int = 20,
        support_measure: SupportMeasure = SupportMeasure.EMBEDDINGS,
    ) -> None:
        if beam_width < 1:
            raise ValueError("beam_width must be at least 1")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self._context = MiningContext(graph, min_support, support_measure)
        self._beam_width = beam_width
        self._iterations = iterations
        self._max_best = max_best
        self.elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def _support(self, occurrences: Sequence[Occurrence]) -> int:
        if self._context.support_measure is SupportMeasure.TRANSACTIONS:
            return len({index for index, _ in occurrences})
        return len(
            {
                (index, frozenset(v for edge in edges for v in edge))
                for index, edges in occurrences
            }
        )

    @staticmethod
    def _compression_score(pattern: LabeledGraph, support: int) -> float:
        """Approximate MDL gain of compressing every occurrence into one vertex."""
        covered = support * pattern.num_edges()
        description = pattern.num_edges() + pattern.num_vertices()
        return float(covered - description)

    def _seed_candidates(self) -> List[_Candidate]:
        grouped: Dict[Tuple, List[Occurrence]] = {}
        samples: Dict[Tuple, Tuple[int, FrozenSet[EdgeKey]]] = {}
        for graph_index in self._context.graph_indices():
            graph = self._context.graph(graph_index)
            for edge in graph.edges():
                labels = tuple(
                    sorted((str(graph.label_of(edge.u)), str(graph.label_of(edge.v))))
                )
                key = (labels, str(edge.label) if edge.label else "")
                occurrence = (graph_index, frozenset({_edge_key(edge.u, edge.v)}))
                grouped.setdefault(key, []).append(occurrence)
                samples.setdefault(key, occurrence)
        candidates = []
        for key, occurrences in grouped.items():
            support = self._support(occurrences)
            if support < self._context.min_support:
                continue
            graph_index, edges = samples[key]
            pattern = (
                self._context.graph(graph_index).edge_subgraph(sorted(edges)).compact()[0]
            )
            candidates.append(
                _Candidate(
                    pattern,
                    occurrences,
                    support,
                    self._compression_score(pattern, support),
                )
            )
        return candidates

    def _occurrence_key(self, graph_index: int, edges: FrozenSet[EdgeKey]) -> Tuple:
        """A cheap structural key grouping extended occurrences into candidates.

        The key is the multiset of labeled edges plus the degree histogram of
        the occurrence — not a full canonical form, but computable without
        materialising a subgraph.  SUBDUE is a heuristic beam search, so the
        occasional merge of two similar-but-not-isomorphic occurrences only
        blurs a score, it does not affect soundness of the reported supports
        (supports are recomputed per group from the grouped occurrences).
        """
        graph = self._context.graph(graph_index)
        labeled_edges = sorted(
            tuple(sorted((str(graph.label_of(u)), str(graph.label_of(v)))))
            for u, v in edges
        )
        degrees: Dict[VertexId, int] = {}
        for u, v in edges:
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        degree_histogram = sorted(
            (str(graph.label_of(vertex)), degree) for vertex, degree in degrees.items()
        )
        return (tuple(labeled_edges), tuple(degree_histogram))

    def _extend(self, candidate: _Candidate) -> List[_Candidate]:
        grouped: Dict[Tuple, List[Occurrence]] = {}
        samples: Dict[Tuple, Occurrence] = {}
        for graph_index, edges in candidate.occurrences:
            graph = self._context.graph(graph_index)
            vertices = {v for edge in edges for v in edge}
            for vertex in vertices:
                for neighbor in graph.neighbors(vertex):
                    new_edge = _edge_key(vertex, neighbor)
                    if new_edge in edges:
                        continue
                    extended = edges | {new_edge}
                    key = self._occurrence_key(graph_index, extended)
                    grouped.setdefault(key, []).append((graph_index, extended))
                    samples.setdefault(key, (graph_index, extended))
        extensions = []
        for key, occurrences in grouped.items():
            support = self._support(occurrences)
            if support < self._context.min_support:
                continue
            graph_index, edges = samples[key]
            pattern = (
                self._context.graph(graph_index).edge_subgraph(sorted(edges)).compact()[0]
            )
            extensions.append(
                _Candidate(
                    pattern,
                    occurrences,
                    support,
                    self._compression_score(pattern, support),
                )
            )
        return extensions

    # ------------------------------------------------------------------ #
    def mine(self) -> List[MinedPattern]:
        """Return the best substructures by compression score (best first)."""
        started = time.perf_counter()
        beam = self._seed_candidates()
        beam.sort(key=lambda c: -c.score)
        beam = beam[: self._beam_width]

        best: List[_Candidate] = list(beam)
        registry = IsomorphismRegistry()
        for candidate in beam:
            registry.add(candidate.pattern)

        for _ in range(self._iterations):
            if not beam:
                break
            extensions: List[_Candidate] = []
            for candidate in beam:
                extensions.extend(self._extend(candidate))
            if not extensions:
                break
            extensions.sort(key=lambda c: -c.score)
            beam = extensions[: self._beam_width]
            for candidate in beam:
                if registry.add(candidate.pattern):
                    best.append(candidate)

        best.sort(key=lambda c: -c.score)
        self.elapsed_seconds = time.perf_counter() - started
        return [
            MinedPattern(candidate.pattern, candidate.support, candidate.score)
            for candidate in best[: self._max_best]
        ]
