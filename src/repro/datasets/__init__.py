"""Synthetic datasets reproducing the paper's evaluation workloads.

* :mod:`repro.datasets.synthetic` — the Table 1/2 single-graph settings
  (GID 1–5), the Table 3 varied-skinniness injection experiment and the
  graph-transaction databases of Figures 9–10.
* :mod:`repro.datasets.dblp` — a synthetic stand-in for the DBLP author
  timeline graphs of Section 6.3 (same schema: per-year timeline nodes with
  collaboration-strength labels P/S/J/B × levels 1–3).
* :mod:`repro.datasets.weibo` — a synthetic stand-in for the Sina Weibo
  retweet conversations of Section 6.3 (root / follower / followee / other
  roles, long diffusion chains).
* :mod:`repro.datasets.trajectories` — location-based-service trajectory
  graphs for the mobile-data-mining motivation of Section 1.
"""

from repro.datasets.synthetic import (
    DataSetting,
    TABLE1_SETTINGS,
    build_gid_dataset,
    build_skinniness_series,
    build_transaction_dataset,
)
from repro.datasets.dblp import DBLPConfig, generate_dblp_dataset
from repro.datasets.weibo import WeiboConfig, generate_weibo_dataset
from repro.datasets.trajectories import TrajectoryConfig, generate_trajectory_dataset

__all__ = [
    "DataSetting",
    "TABLE1_SETTINGS",
    "build_gid_dataset",
    "build_skinniness_series",
    "build_transaction_dataset",
    "DBLPConfig",
    "generate_dblp_dataset",
    "WeiboConfig",
    "generate_weibo_dataset",
    "TrajectoryConfig",
    "generate_trajectory_dataset",
]
