"""Synthetic evaluation datasets (Section 6.2, Tables 1–3).

The paper builds its synthetic single-graph datasets by generating an
Erdős–Rényi background and injecting long skinny patterns and short patterns
into it.  Table 1 lists five settings (GID 1–5) parameterised by:

==========  =====================================================
``|V|``     number of background vertices
``f``       number of distinct vertex labels
``deg``     average degree of the background
``m``       number of injected long patterns (5 in every setting)
``|V_L|``   vertices per injected long pattern
``L_d``     diameter of each injected long pattern
``L_s``     embeddings (support) of each injected long pattern
``n``       number of injected short patterns
``|V_S|``   vertices per injected short pattern
``S_d``     diameter of each injected short pattern
``S_s``     embeddings (support) of each injected short pattern
==========  =====================================================

``TABLE1_SETTINGS`` reproduces the exact values of Table 1.  Because the
reproduction mines with pure Python rather than the authors' C++, the
builders accept a ``scale`` factor that shrinks ``|V|`` (and the injected
pattern sizes proportionally) while keeping every ratio from the table —
benchmarks default to a reduced scale and note it in their output.

``build_skinniness_series`` reproduces the Table 3 experiment: ten injected
patterns of fixed vertex count but decreasing diameter (decreasing
"skinniness").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
    random_tree_pattern,
)
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class DataSetting:
    """One row of Table 1."""

    gid: int
    num_vertices: int
    num_labels: int
    avg_degree: float
    num_long_patterns: int
    long_pattern_vertices: int
    long_pattern_diameter: int
    long_pattern_support: int
    num_short_patterns: int
    short_pattern_vertices: int
    short_pattern_diameter: int
    short_pattern_support: int

    def scaled(self, scale: float) -> "DataSetting":
        """Shrink the setting for pure-Python mining while keeping its shape.

        The background size and the injected long-pattern dimensions scale
        down together (their vertex-count / diameter ratio is preserved);
        label count, degree and the short-pattern shapes stay fixed so the
        qualitative contrast between settings (e.g. GID 2 doubles the degree
        of GID 1) is preserved.  Supports are never scaled below 2.
        """
        if scale <= 0 or scale > 1:
            raise ValueError("scale must lie in (0, 1]")
        long_diameter = max(4, round(self.long_pattern_diameter * scale))
        ratio = self.long_pattern_vertices / self.long_pattern_diameter
        long_vertices = max(long_diameter + 1, round(long_diameter * ratio))
        return DataSetting(
            gid=self.gid,
            num_vertices=max(60, int(self.num_vertices * scale)),
            num_labels=self.num_labels,
            avg_degree=self.avg_degree,
            num_long_patterns=self.num_long_patterns,
            long_pattern_vertices=long_vertices,
            long_pattern_diameter=long_diameter,
            long_pattern_support=max(2, round(self.long_pattern_support * scale)),
            num_short_patterns=max(1, int(self.num_short_patterns * scale)),
            short_pattern_vertices=self.short_pattern_vertices,
            short_pattern_diameter=self.short_pattern_diameter,
            short_pattern_support=max(2, round(self.short_pattern_support * scale)),
        )


#: Table 1 of the paper, row by row (m = 5 long patterns in every setting).
TABLE1_SETTINGS: Dict[int, DataSetting] = {
    1: DataSetting(1, 500, 80, 2, 5, 40, 18, 2, 5, 4, 2, 2),
    2: DataSetting(2, 500, 80, 4, 5, 40, 18, 2, 5, 4, 2, 2),
    3: DataSetting(3, 1000, 240, 2, 5, 40, 18, 2, 5, 4, 2, 20),
    4: DataSetting(4, 1000, 240, 4, 5, 40, 18, 2, 5, 4, 2, 20),
    5: DataSetting(5, 600, 150, 4, 5, 40, 18, 2, 20, 4, 2, 2),
}

#: Table 2 of the paper: how each setting differs from another.
TABLE2_DIFFERENCES: Dict[str, str] = {
    "2 vs 1": "GID 2 doubles the average degree",
    "3 vs 1": "GID 3 increases the support of short patterns",
    "4 vs 3": "GID 4 doubles the average degree",
    "5 vs 2": "GID 5 increases the number of short patterns",
}


@dataclass
class GIDDataset:
    """A generated GID dataset: the data graph plus injection ground truth."""

    setting: DataSetting
    graph: LabeledGraph
    long_patterns: List[LabeledGraph] = field(default_factory=list)
    short_patterns: List[LabeledGraph] = field(default_factory=list)

    @property
    def gid(self) -> int:
        return self.setting.gid


def _skinny_injected_pattern(
    num_vertices: int,
    diameter: int,
    num_labels: int,
    rng: random.Random,
) -> LabeledGraph:
    """An injected long pattern: diameter ``diameter``, ``num_vertices`` vertices.

    Mirrors the paper's injected patterns: a long backbone with short twigs
    (skinniness ≤ 2, the value used in the paper's mining requests).
    """
    skinniness = 2 if diameter >= 4 else 1
    return random_skinny_pattern(
        backbone_length=diameter,
        skinniness=skinniness,
        num_vertices=num_vertices,
        num_labels=num_labels,
        rng=rng,
    )


def build_gid_dataset(
    gid: int,
    seed: int = 0,
    scale: float = 1.0,
) -> GIDDataset:
    """Generate the GID ``gid`` dataset of Table 1 (optionally scaled down)."""
    if gid not in TABLE1_SETTINGS:
        raise ValueError(f"unknown GID {gid}; Table 1 defines GIDs 1-5")
    setting = TABLE1_SETTINGS[gid].scaled(scale) if scale != 1.0 else TABLE1_SETTINGS[gid]
    rng = random.Random(seed * 1_000 + gid)
    graph = erdos_renyi_graph(
        setting.num_vertices,
        setting.avg_degree,
        setting.num_labels,
        rng=rng,
        name=f"GID-{gid}",
    )
    dataset = GIDDataset(setting=setting, graph=graph)

    for _ in range(setting.num_long_patterns):
        pattern = _skinny_injected_pattern(
            setting.long_pattern_vertices,
            setting.long_pattern_diameter,
            setting.num_labels,
            rng,
        )
        inject_pattern(
            graph, pattern, copies=setting.long_pattern_support, rng=rng
        )
        dataset.long_patterns.append(pattern)

    for _ in range(setting.num_short_patterns):
        pattern = random_tree_pattern(
            setting.short_pattern_vertices, setting.num_labels, rng=rng
        )
        inject_pattern(
            graph, pattern, copies=setting.short_pattern_support, rng=rng
        )
        dataset.short_patterns.append(pattern)
    return dataset


# --------------------------------------------------------------------- #
# Table 3: ten patterns of varied skinniness
# --------------------------------------------------------------------- #
#: Table 3 of the paper: (PID, |V|, diameter) for the ten injected patterns.
TABLE3_PATTERNS: List[Tuple[int, int, int]] = [
    (1, 60, 50),
    (2, 60, 45),
    (3, 60, 40),
    (4, 60, 35),
    (5, 60, 30),
    (6, 20, 8),
    (7, 30, 8),
    (8, 40, 8),
    (9, 50, 8),
    (10, 60, 8),
]


@dataclass
class SkinninessSeries:
    """The Table 3 experiment data: background + the ten injected patterns."""

    graph: LabeledGraph
    patterns: Dict[int, LabeledGraph]

    def pattern_diameter(self, pid: int) -> int:
        from repro.graph.paths import diameter

        return diameter(self.patterns[pid])


def build_skinniness_series(
    seed: int = 0,
    scale: float = 1.0,
    num_vertices: int = 2_000,
    avg_degree: float = 3.0,
    num_labels: int = 100,
    support: int = 2,
) -> SkinninessSeries:
    """The Table 3 setup: 10 patterns of decreasing skinniness injected into one graph.

    ``scale`` shrinks both the background and the injected pattern sizes (the
    ratio diameter / vertex-count of each PID is preserved, which is what
    makes PID 1 the most skinny and PID 10 the least).
    """
    if scale <= 0 or scale > 1:
        raise ValueError("scale must lie in (0, 1]")
    rng = random.Random(seed)
    background = erdos_renyi_graph(
        max(100, int(num_vertices * scale)),
        avg_degree,
        num_labels,
        rng=rng,
        name="table3-background",
    )
    patterns: Dict[int, LabeledGraph] = {}
    for pid, vertices, pattern_diameter in TABLE3_PATTERNS:
        scaled_vertices = max(6, int(vertices * scale))
        scaled_diameter = max(3, int(pattern_diameter * scale))
        if scaled_diameter >= scaled_vertices:
            scaled_diameter = scaled_vertices - 1
        skinniness = 1 if scaled_diameter >= 2 * 1 else 0
        # Wider (less skinny) patterns need deeper twigs to absorb the extra
        # vertices; cap by the generator's 2*delta <= backbone requirement.
        extra = scaled_vertices - (scaled_diameter + 1)
        while skinniness * scaled_diameter < extra and 2 * (skinniness + 1) <= scaled_diameter:
            skinniness += 1
        pattern = random_skinny_pattern(
            backbone_length=scaled_diameter,
            skinniness=max(1, skinniness),
            num_vertices=scaled_vertices,
            num_labels=num_labels,
            rng=rng,
        )
        inject_pattern(background, pattern, copies=support, rng=rng)
        patterns[pid] = pattern
    return SkinninessSeries(graph=background, patterns=patterns)


# --------------------------------------------------------------------- #
# graph-transaction datasets (Figures 9 and 10)
# --------------------------------------------------------------------- #
@dataclass
class TransactionDataset:
    """The Figures 9/10 graph-transaction workload with its ground truth."""

    graphs: List[LabeledGraph]
    skinny_patterns: List[LabeledGraph]
    small_patterns: List[LabeledGraph]


def build_transaction_dataset(
    seed: int = 0,
    scale: float = 1.0,
    num_graphs: int = 10,
    graph_vertices: int = 800,
    avg_degree: float = 5.0,
    num_labels: int = 80,
    num_skinny: int = 5,
    skinny_vertices: int = 40,
    skinny_diameter: int = 20,
    skinny_support: int = 5,
    num_small: int = 0,
    small_vertices: int = 5,
    small_support: int = 5,
) -> TransactionDataset:
    """The paper's graph-transaction setting: 10 ER graphs + injected patterns.

    Figure 9 uses the defaults (five injected skinny patterns); Figure 10
    additionally injects 120 small patterns (``num_small=120``).  ``scale``
    shrinks the per-graph size and the injected pattern dimensions.
    """
    if scale <= 0 or scale > 1:
        raise ValueError("scale must lie in (0, 1]")
    rng = random.Random(seed)
    vertices = max(60, int(graph_vertices * scale))
    scaled_skinny_vertices = max(8, int(skinny_vertices * scale))
    scaled_skinny_diameter = max(4, int(skinny_diameter * scale))
    if scaled_skinny_diameter >= scaled_skinny_vertices:
        scaled_skinny_diameter = scaled_skinny_vertices - 1
    scaled_num_small = max(0, int(num_small * scale))

    graphs = [
        erdos_renyi_graph(
            vertices, avg_degree, num_labels, rng=rng, name=f"transaction-{index}"
        )
        for index in range(num_graphs)
    ]

    skinny_patterns: List[LabeledGraph] = []
    for _ in range(num_skinny):
        pattern = random_skinny_pattern(
            backbone_length=scaled_skinny_diameter,
            skinniness=2 if scaled_skinny_diameter >= 4 else 1,
            num_vertices=scaled_skinny_vertices,
            num_labels=num_labels,
            rng=rng,
        )
        targets = rng.sample(range(num_graphs), min(skinny_support, num_graphs))
        for index in targets:
            inject_pattern(graphs[index], pattern, copies=1, rng=rng)
        skinny_patterns.append(pattern)

    small_patterns: List[LabeledGraph] = []
    for _ in range(scaled_num_small):
        pattern = random_tree_pattern(small_vertices, num_labels, rng=rng)
        targets = rng.sample(range(num_graphs), min(small_support, num_graphs))
        for index in targets:
            inject_pattern(graphs[index], pattern, copies=1, rng=rng)
        small_patterns.append(pattern)

    return TransactionDataset(
        graphs=graphs,
        skinny_patterns=skinny_patterns,
        small_patterns=small_patterns,
    )
