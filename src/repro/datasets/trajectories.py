"""Synthetic mobility / location-based-service trajectory graphs (Section 1).

The paper motivates skinny patterns with mobile data mining: a user's
trajectory is a long chain of visited places (the backbone) annotated with
nearby businesses, content topics and activities (the twigs).  No public
dataset accompanies the paper, so this module synthesises trajectory graphs
with exactly that structure:

* a city model with ``num_locations`` places, each carrying a category label
  (e.g. ``cafe``, ``museum``, ``park``);
* a set of *popular routes* — sequences of location categories that many
  users follow (these become the frequent backbones);
* per-user trajectory graphs: the visited locations as a path, with
  attachment nodes for activities and points of interest (the twigs), plus
  per-user noise.

The quickstart and the mobility example mine these graphs for l-long
δ-skinny patterns to recover the popular routes with their associated
context, which is the paper's first application narrative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph

#: Location categories used for backbone (visit) nodes.
LOCATION_CATEGORIES = (
    "home",
    "cafe",
    "office",
    "gym",
    "park",
    "museum",
    "mall",
    "restaurant",
    "bar",
    "station",
)

#: Context annotations attached as twigs to visits.
CONTEXT_LABELS = (
    "photo",
    "checkin",
    "review",
    "purchase",
    "meeting",
    "workout",
)


@dataclass
class TrajectoryConfig:
    """Configuration of the synthetic trajectory dataset."""

    num_users: int = 30
    route_length: int = 8
    num_popular_routes: int = 2
    users_per_route: int = 6
    context_probability: float = 0.4
    noise_visits: int = 3
    seed: int = 0


@dataclass
class TrajectoryDataset:
    """Generated per-user trajectory graphs plus the planted popular routes."""

    graphs: List[LabeledGraph]
    popular_routes: List[List[str]] = field(default_factory=list)
    route_of_user: Dict[int, Optional[int]] = field(default_factory=dict)
    config: TrajectoryConfig = field(default_factory=TrajectoryConfig)


def _route_categories(length: int, rng: random.Random) -> List[str]:
    """A popular route: a category sequence without immediate repeats."""
    route = [rng.choice(LOCATION_CATEGORIES)]
    while len(route) < length + 1:
        candidate = rng.choice(LOCATION_CATEGORIES)
        if candidate != route[-1]:
            route.append(candidate)
    return route


def _trajectory_graph(
    user_id: int,
    visits: Sequence[str],
    config: TrajectoryConfig,
    rng: random.Random,
) -> LabeledGraph:
    graph = LabeledGraph(name=f"user-{user_id}")
    for position, category in enumerate(visits):
        graph.add_vertex(position, category)
        if position > 0:
            graph.add_edge(position - 1, position)
    next_id = len(visits)
    for position in range(len(visits)):
        if rng.random() < config.context_probability:
            graph.add_vertex(next_id, rng.choice(CONTEXT_LABELS))
            graph.add_edge(position, next_id)
            next_id += 1
    return graph


def generate_trajectory_dataset(
    config: Optional[TrajectoryConfig] = None,
) -> TrajectoryDataset:
    """Generate per-user trajectory graphs with planted popular routes.

    Users assigned to a popular route follow its category sequence exactly
    (with personal context twigs); remaining users wander randomly.  Mining
    the database with ``length = route_length`` recovers the planted routes.
    """
    config = config or TrajectoryConfig()
    planted_users = config.num_popular_routes * config.users_per_route
    if config.num_users < planted_users:
        raise ValueError("num_users must cover users_per_route for every popular route")
    if config.route_length < 2:
        raise ValueError("route_length must be at least 2")
    rng = random.Random(config.seed)

    routes = [_route_categories(config.route_length, rng) for _ in range(config.num_popular_routes)]
    graphs: List[LabeledGraph] = []
    route_of_user: Dict[int, Optional[int]] = {}

    user_id = 0
    for route_index, route in enumerate(routes):
        for _ in range(config.users_per_route):
            graphs.append(_trajectory_graph(user_id, route, config, rng))
            route_of_user[user_id] = route_index
            user_id += 1

    while user_id < config.num_users:
        wander = _route_categories(config.route_length + config.noise_visits, rng)
        graphs.append(_trajectory_graph(user_id, wander, config, rng))
        route_of_user[user_id] = None
        user_id += 1

    return TrajectoryDataset(
        graphs=graphs,
        popular_routes=routes,
        route_of_user=route_of_user,
        config=config,
    )
