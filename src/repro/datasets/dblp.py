"""Synthetic DBLP-style author-timeline graphs (Section 6.3, Figures 21–22).

The paper builds, from the real DBLP bibliography, one heterogeneous graph
per author: a continuous *time-line* of year nodes, where each year node is
connected to at most four collaboration nodes labeled ``Xk`` with
``X ∈ {P, S, J, B}`` (Prolific / Senior / Junior / Beginner co-author
category) and ``k ∈ {1, 2, 3}`` (collaboration strength level).  Long skinny
patterns mined across ≥ 20-year timelines reveal temporal collaboration
patterns such as "collaborating with increasingly productive authors".

The real DBLP dump is proprietary-ish and large, so this module generates a
synthetic graph dataset with the same schema:

* each author graph is a timeline of ``career_length`` year nodes (label
  ``"Y"``), connected in a path — exactly the paper's backbone;
* each year node receives collaboration nodes sampled from a career
  *archetype* (e.g. ``rising-star`` authors collaborate with more productive
  co-authors as years pass, mirroring the paper's Figure 21 pattern);
* a configurable number of authors share each archetype, so the archetypal
  temporal patterns are frequent and minable, while per-author noise keeps
  the graphs distinct.

The generator returns the graph database plus the planted archetype
descriptions so benchmarks can verify that SkinnyMine recovers them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph

#: Author productivity categories of the paper (Prolific, Senior, Junior, Beginner).
CATEGORIES = ("P", "S", "J", "B")
#: Collaboration strength levels of the paper.
LEVELS = (1, 2, 3)
#: Label of the timeline (year) nodes.
YEAR_LABEL = "Y"


def collaboration_label(category: str, level: int) -> str:
    """The paper's node labels: 'P1' .. 'B3'."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}")
    if level not in LEVELS:
        raise ValueError(f"unknown level {level}")
    return f"{category}{level}"


@dataclass(frozen=True)
class CareerArchetype:
    """A planted temporal collaboration trajectory.

    ``phases`` is a sequence of (category, level) pairs; an author following
    the archetype attaches the phase's collaboration node to every year of
    that phase (the career is split evenly across phases).  The Figure 21
    pattern ("collaborates with an increasing number of more productive
    authors along the career") corresponds to phases like
    ``B1 → J1 → S2 → P2``.
    """

    name: str
    phases: Tuple[Tuple[str, int], ...]

    def label_sequence(self, career_length: int) -> List[str]:
        """The collaboration label attached to each year under this archetype."""
        labels = []
        per_phase = max(1, career_length // len(self.phases))
        for year in range(career_length):
            phase_index = min(year // per_phase, len(self.phases) - 1)
            category, level = self.phases[phase_index]
            labels.append(collaboration_label(category, level))
        return labels


#: The archetypes used by default: the two patterns the paper showcases plus
#: a flat one acting as background population.
DEFAULT_ARCHETYPES: Tuple[CareerArchetype, ...] = (
    CareerArchetype(
        "rising-star",  # Figure 21: increasingly productive collaborators
        (("B", 1), ("J", 1), ("S", 2), ("P", 2), ("P", 3)),
    ),
    CareerArchetype(
        "early-senior",  # Figure 22: strong collaborators from early on
        (("S", 1), ("S", 2), ("P", 2), ("P", 2), ("P", 3)),
    ),
    CareerArchetype(
        "steady",  # background population
        (("J", 1), ("J", 1), ("J", 2), ("J", 2), ("J", 2)),
    ),
)


@dataclass
class DBLPConfig:
    """Configuration of the synthetic DBLP-style dataset."""

    num_authors: int = 60
    career_length: int = 20
    archetypes: Tuple[CareerArchetype, ...] = DEFAULT_ARCHETYPES
    authors_per_archetype: int = 3
    noise_probability: float = 0.15
    max_extra_collaborations: int = 1
    seed: int = 0


@dataclass
class DBLPDataset:
    """The generated dataset plus ground truth for verification."""

    graphs: List[LabeledGraph]
    archetype_of_author: Dict[int, Optional[str]] = field(default_factory=dict)
    config: DBLPConfig = field(default_factory=DBLPConfig)

    def archetype_authors(self, name: str) -> List[int]:
        return [
            author
            for author, archetype in self.archetype_of_author.items()
            if archetype == name
        ]


def _author_graph(
    author_id: int,
    career_length: int,
    collaboration_labels: Sequence[Optional[str]],
    rng: random.Random,
    noise_probability: float,
    max_extra_collaborations: int,
) -> LabeledGraph:
    """One author's heterogeneous timeline graph."""
    graph = LabeledGraph(name=f"author-{author_id}")
    # Timeline backbone.
    for year in range(career_length):
        graph.add_vertex(year, YEAR_LABEL)
        if year > 0:
            graph.add_edge(year - 1, year)
    next_id = career_length
    for year in range(career_length):
        planted = collaboration_labels[year]
        if planted is not None:
            graph.add_vertex(next_id, planted)
            graph.add_edge(year, next_id)
            next_id += 1
        # Noise: occasional extra collaboration nodes with random labels.
        for _ in range(max_extra_collaborations):
            if rng.random() < noise_probability:
                label = collaboration_label(rng.choice(CATEGORIES), rng.choice(LEVELS))
                graph.add_vertex(next_id, label)
                graph.add_edge(year, next_id)
                next_id += 1
    return graph


def generate_dblp_dataset(config: Optional[DBLPConfig] = None) -> DBLPDataset:
    """Generate the synthetic DBLP-style author-timeline graph database.

    Authors ``0 .. archetypes * authors_per_archetype - 1`` follow the planted
    archetypes; the remaining authors get random collaboration labels
    (population noise).  All graphs share the timeline schema, so mining with
    a length constraint close to ``career_length - 1`` recovers the planted
    temporal collaboration patterns across authors — the Section 6.3 use case.
    """
    config = config or DBLPConfig()
    if config.num_authors < len(config.archetypes) * config.authors_per_archetype:
        raise ValueError(
            "num_authors must cover archetypes * authors_per_archetype planted authors"
        )
    if config.career_length < 2:
        raise ValueError("career_length must be at least 2")
    rng = random.Random(config.seed)
    graphs: List[LabeledGraph] = []
    archetype_of_author: Dict[int, Optional[str]] = {}

    author_id = 0
    for archetype in config.archetypes:
        labels = archetype.label_sequence(config.career_length)
        for _ in range(config.authors_per_archetype):
            graphs.append(
                _author_graph(
                    author_id,
                    config.career_length,
                    labels,
                    rng,
                    config.noise_probability,
                    config.max_extra_collaborations,
                )
            )
            archetype_of_author[author_id] = archetype.name
            author_id += 1

    while author_id < config.num_authors:
        labels = [
            collaboration_label(rng.choice(CATEGORIES), rng.choice(LEVELS))
            if rng.random() < 0.8
            else None
            for _ in range(config.career_length)
        ]
        graphs.append(
            _author_graph(
                author_id,
                config.career_length,
                labels,
                rng,
                config.noise_probability,
                config.max_extra_collaborations,
            )
        )
        archetype_of_author[author_id] = None
        author_id += 1

    return DBLPDataset(
        graphs=graphs, archetype_of_author=archetype_of_author, config=config
    )
