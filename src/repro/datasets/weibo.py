"""Synthetic Sina-Weibo-style retweet conversations (Section 6.3, Figures 23–24).

The paper builds one *conversation* graph per popular tweet: the author of
the original tweet is the root, every retweet or comment adds an edge between
the acting user and the target user, and users carry one of four labels:

* ``R``  — the root user (original author),
* ``F``  — users who follow the root user,
* ``E``  — users who are followed by the root user (followees),
* ``O``  — all other users.

Long skinny patterns mined over the conversations (length constraint ≈ 10)
reveal diffusion chains; the showcased Figure-24 pattern is a 13-long
3-skinny chain in which the root user repeatedly re-engages and each
engagement pushes the tweet to a wider audience.

The real Weibo crawl (1.8M users, 230M tweets) is unavailable, so this module
generates conversations with the same schema and plants a configurable
"root re-engagement" diffusion chain in a subset of them so the Section 6.3
mining task is reproducible end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.labeled_graph import LabeledGraph

ROOT_LABEL = "R"
FOLLOWER_LABEL = "F"
FOLLOWEE_LABEL = "E"
OTHER_LABEL = "O"
USER_LABELS = (ROOT_LABEL, FOLLOWER_LABEL, FOLLOWEE_LABEL, OTHER_LABEL)


@dataclass
class WeiboConfig:
    """Configuration of the synthetic conversation dataset."""

    num_conversations: int = 40
    planted_conversations: int = 8
    chain_length: int = 10
    branching_probability: float = 0.35
    max_branch_depth: int = 2
    background_retweets: int = 25
    seed: int = 0


@dataclass
class WeiboDataset:
    """Generated conversations plus the ids of those carrying the planted chain."""

    graphs: List[LabeledGraph]
    planted_conversation_ids: List[int] = field(default_factory=list)
    config: WeiboConfig = field(default_factory=WeiboConfig)


def _planted_chain_labels(chain_length: int) -> List[str]:
    """The planted diffusion chain: the root re-engages every few hops.

    Mirrors the Figure-24 narrative: follower segments punctuated by the root
    user re-joining the conversation (labels ``F F R F F R ...``).
    """
    labels: List[str] = []
    for position in range(chain_length + 1):
        if position == 0 or position % 3 == 0:
            labels.append(ROOT_LABEL if position == 0 or position % 6 == 0 else FOLLOWER_LABEL)
        else:
            labels.append(FOLLOWER_LABEL)
    # Ensure the root re-appears at least twice after the start.
    if chain_length >= 6:
        labels[3] = ROOT_LABEL
        labels[6] = ROOT_LABEL
    return labels


def _conversation_graph(
    conversation_id: int,
    config: WeiboConfig,
    rng: random.Random,
    plant_chain: bool,
) -> LabeledGraph:
    graph = LabeledGraph(name=f"conversation-{conversation_id}")
    root = 0
    graph.add_vertex(root, ROOT_LABEL)
    next_id = 1

    def add_user(label: str, attach_to: int) -> int:
        nonlocal next_id
        vertex = next_id
        graph.add_vertex(vertex, label)
        graph.add_edge(attach_to, vertex)
        next_id += 1
        return vertex

    # Background diffusion: star-ish retweets around the root with short chains.
    frontier = [root]
    for _ in range(config.background_retweets):
        attach_to = rng.choice(frontier)
        label = rng.choices(
            (FOLLOWER_LABEL, FOLLOWEE_LABEL, OTHER_LABEL), weights=(0.5, 0.2, 0.3)
        )[0]
        vertex = add_user(label, attach_to)
        if rng.random() < config.branching_probability and len(frontier) < 40:
            frontier.append(vertex)

    if plant_chain:
        labels = _planted_chain_labels(config.chain_length)
        previous = root
        for depth, label in enumerate(labels[1:], start=1):
            vertex = add_user(label, previous)
            # Short twigs off the chain (audience reached at each hop).
            if rng.random() < config.branching_probability:
                twig = add_user(OTHER_LABEL, vertex)
                if config.max_branch_depth >= 2 and rng.random() < 0.5:
                    add_user(OTHER_LABEL, twig)
            previous = vertex
    return graph


def generate_weibo_dataset(config: Optional[WeiboConfig] = None) -> WeiboDataset:
    """Generate the synthetic conversation database.

    The first ``planted_conversations`` conversations carry the long
    root-re-engagement diffusion chain (so it is frequent across
    transactions); the rest are background conversations with ordinary
    star-shaped retweet activity.
    """
    config = config or WeiboConfig()
    if config.planted_conversations > config.num_conversations:
        raise ValueError("planted_conversations cannot exceed num_conversations")
    if config.chain_length < 2:
        raise ValueError("chain_length must be at least 2")
    rng = random.Random(config.seed)
    graphs: List[LabeledGraph] = []
    planted_ids: List[int] = []
    for conversation_id in range(config.num_conversations):
        plant = conversation_id < config.planted_conversations
        graphs.append(_conversation_graph(conversation_id, config, rng, plant))
        if plant:
            planted_ids.append(conversation_id)
    return WeiboDataset(graphs=graphs, planted_conversation_ids=planted_ids, config=config)
