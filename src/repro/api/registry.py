"""The constraint registry: one typed query surface over many constraints.

Section 5 of the paper abstracts SkinnyMine into a recipe applicable to any
*reducible* + *continuous* graph constraint.  The registry is where concrete
constraints plug into that recipe at the API level: a
:class:`ConstraintSpec` names the constraint, declares its parameter schema
(:class:`ParamSpec`), and knows how to build the
:class:`repro.core.framework.ConstraintDriver` that executes its two stages.

Everything downstream — :class:`repro.api.Query` validation, the
:class:`repro.api.MiningEngine` dispatch, the Stage-1 store keys
(``StoreKey.constraint_id``), incremental repair and the ``repro mine
--constraint`` CLI — is driven by the spec, so registering a new constraint
here is all it takes to serve it through every entry point.

Built-in registrations (``skinny``, ``path``, ``diam-le``) live in
:mod:`repro.api.builtin_constraints` and are loaded lazily on first lookup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.api.errors import (
    MalformedQueryError,
    MissingParameterError,
    ParameterTypeError,
    ParameterValueError,
    UnexpectedParameterError,
    UnknownConstraintError,
)

#: Engine-level knobs forwarded to driver factories: optional integer safety
#: caps plus the Stage-1 exactness mode string (``"exact"``/``"pruned"``).
Caps = Mapping[str, object]


@dataclass(frozen=True)
class ParamSpec:
    """Schema of one constraint parameter.

    ``stage_one`` marks parameters that change the Stage-1 (minimal pattern)
    computation and therefore belong in the index-store key; the others only
    shape Stage-2 growth and the result.  ``nullable`` parameters accept an
    explicit ``None`` (JSON ``null``) alongside their declared type — the
    idiom for "disable this cap".
    """

    name: str
    type: type = int
    required: bool = True
    default: object = None
    minimum: Optional[int] = None
    stage_one: bool = False
    nullable: bool = False
    doc: str = ""

    def coerce(self, constraint_id: str, value: object) -> object:
        """Validate one supplied value against this spec (typed errors)."""
        if value is None and self.nullable:
            return None
        if self.type is int:
            # bool is an int subclass but never a valid count/length.
            if isinstance(value, bool) or not isinstance(value, int):
                raise ParameterTypeError(
                    constraint_id,
                    f"parameter {self.name!r} must be an integer, got {value!r}",
                    parameter=self.name,
                )
        elif not isinstance(value, self.type):
            raise ParameterTypeError(
                constraint_id,
                f"parameter {self.name!r} must be {self.type.__name__}, got {value!r}",
                parameter=self.name,
            )
        if self.minimum is not None and value < self.minimum:
            raise ParameterValueError(
                constraint_id,
                f"parameter {self.name!r} must be >= {self.minimum}, got {value!r}",
                parameter=self.name,
            )
        return value

    def describe(self) -> Dict[str, object]:
        """JSON-friendly schema row (for ``repro constraints`` and docs)."""
        return {
            "name": self.name,
            "type": self.type.__name__,
            "required": self.required,
            "default": self.default,
            "minimum": self.minimum,
            "stage_one": self.stage_one,
            "nullable": self.nullable,
            "doc": self.doc,
        }


@dataclass(frozen=True)
class ConstraintSpec:
    """Everything the engine needs to serve one constraint.

    ``make_driver(params, caps, include_minimal)`` builds the two-stage
    driver; ``driver_parameter(params)`` derives the hashable parameter the
    driver's ``mine_minimal``/``grow`` expect (e.g. ``(l, δ)`` for skinny).
    ``predicate_factory(params)`` yields the plain predicate used by the
    reducibility/continuity property checks.  ``path_indexed`` marks
    constraints whose Stage-1 entries are frequent-path records repairable by
    :class:`repro.index.incremental.IndexMaintainer`; entries of other
    constraints are invalidated on data edits.  ``deduplicate`` asks the
    engine to collapse isomorphic Stage-2 results reached from several
    minimal patterns (needed when clusters can overlap, as for ``diam-le``).
    """

    constraint_id: str
    description: str
    params: Tuple[ParamSpec, ...]
    make_driver: Callable[[Mapping[str, object], Caps, bool], object]
    driver_parameter: Callable[[Mapping[str, object]], Hashable]
    predicate_factory: Optional[Callable[[Mapping[str, object]], Callable]] = None
    path_indexed: bool = False
    deduplicate: bool = False
    stage_one_cap_names: Tuple[str, ...] = ()

    def validate_params(self, raw: Mapping[str, object]) -> Dict[str, object]:
        """Check ``raw`` against the schema; return the normalised dict.

        Raises a typed :class:`~repro.api.errors.ParameterError` subclass on
        missing / unexpected / mistyped / out-of-range parameters — never a
        bare ``KeyError``.
        """
        if not isinstance(raw, Mapping):
            raise MalformedQueryError(
                f"constraint {self.constraint_id!r}: params must be a mapping, got {raw!r}"
            )
        declared = {spec.name for spec in self.params}
        unexpected = sorted(set(raw) - declared)
        if unexpected:
            raise UnexpectedParameterError(
                self.constraint_id,
                f"unexpected parameter(s) {', '.join(map(repr, unexpected))} "
                f"(declared: {', '.join(sorted(declared)) or 'none'})",
                parameter=unexpected[0],
            )
        normalised: Dict[str, object] = {}
        for spec in self.params:
            if spec.name in raw:
                normalised[spec.name] = spec.coerce(self.constraint_id, raw[spec.name])
            elif spec.required:
                raise MissingParameterError(
                    self.constraint_id,
                    f"missing required parameter {spec.name!r}",
                    parameter=spec.name,
                )
            else:
                normalised[spec.name] = spec.default
        return normalised

    def stage_one_parameter(
        self,
        params: Mapping[str, object],
        min_support: int,
        support_measure: str,
        caps: Optional[Caps] = None,
    ) -> Dict[str, object]:
        """The canonical Stage-1 index parameter for one query.

        Only ``stage_one`` params, the support threshold/measure and any
        engaged Stage-1 caps participate — δ-like growth parameters and
        ``top_k`` never fragment the index.  For the path-indexed
        constraints the engine always engages the ``stage1_mode`` cap, so
        the exactness contract is part of the key: pre-exactness-mode disk
        entries (no ``stage1_mode``, built with heuristic pruning) can never
        be served to an exact-mode engine and simply go cold.

        Examples
        --------
        >>> from repro.api import get_constraint
        >>> spec = get_constraint("skinny")
        >>> parameter = spec.stage_one_parameter(
        ...     {"length": 5, "delta": 1}, 2, "embeddings",
        ...     {"stage1_mode": "exact"},
        ... )
        >>> sorted(parameter.items())
        [('length', 5), ('min_support', 2), ('stage1_mode', 'exact'), ('support_measure', 'embeddings')]
        """
        parameter: Dict[str, object] = {
            spec.name: params[spec.name] for spec in self.params if spec.stage_one
        }
        parameter["min_support"] = min_support
        parameter["support_measure"] = support_measure
        for cap_name in self.stage_one_cap_names:
            cap = (caps or {}).get(cap_name)
            if cap is not None:
                # A capped Stage 1 is deliberately incomplete; keying the cap
                # keeps truncated entries from being served to uncapped users.
                parameter[cap_name] = cap
        return parameter

    def describe(self) -> Dict[str, object]:
        return {
            "constraint_id": self.constraint_id,
            "description": self.description,
            "params": [spec.describe() for spec in self.params],
            "path_indexed": self.path_indexed,
        }


# --------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, ConstraintSpec] = {}
_BUILTINS_LOADED = False
_BUILTINS_IMPORTING = False
_BUILTINS_LOCK = threading.RLock()


def _ensure_builtins() -> None:
    # Deferred so registry/builtins don't import-cycle and so direct imports
    # of submodules see a populated registry.  The flag flips only AFTER the
    # import completes: a lockless read of a half-populated registry from
    # another thread (the serving tier's workers race its event loop here)
    # must block on the lock, not observe "loaded" and miss constraints.
    global _BUILTINS_LOADED, _BUILTINS_IMPORTING
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED or _BUILTINS_IMPORTING:
            # Re-entrant call from builtin_constraints' own registrations
            # (same thread, RLock held): the registry is mid-population by
            # design; outside threads are still blocked on the lock.
            return
        _BUILTINS_IMPORTING = True
        try:
            import repro.api.builtin_constraints  # noqa: F401
        finally:
            _BUILTINS_IMPORTING = False
        _BUILTINS_LOADED = True


def register_constraint(
    spec_or_id,
    driver_factory: Optional[Callable] = None,
    *,
    description: str = "",
    params: Tuple[ParamSpec, ...] = (),
    driver_parameter: Optional[Callable[[Mapping[str, object]], Hashable]] = None,
    predicate_factory: Optional[Callable] = None,
    path_indexed: bool = False,
    deduplicate: bool = False,
    stage_one_cap_names: Tuple[str, ...] = (),
    replace: bool = False,
) -> ConstraintSpec:
    """Register a constraint, making it servable through every entry point.

    Two calling conventions::

        register_constraint(spec)                     # a full ConstraintSpec
        register_constraint("my-id", driver_factory,  # shorthand
                            params=(ParamSpec("k"),), description="...")

    ``driver_factory(params, caps, include_minimal)`` must return an object
    with the :class:`repro.core.framework.ConstraintDriver` interface.  When
    ``driver_parameter`` is omitted, the driver receives the tuple of
    declared parameter values in schema order.  Re-registering an id raises
    ``ValueError`` unless ``replace=True``.

    Examples
    --------
    >>> spec = register_constraint(
    ...     "doc-example",
    ...     lambda params, caps, include_minimal: None,
    ...     params=(ParamSpec("k", int, required=True, minimum=1),),
    ...     description="documentation example",
    ... )
    >>> get_constraint("doc-example") is spec
    True
    >>> spec.validate_params({"k": 3})
    {'k': 3}
    >>> unregister_constraint("doc-example")
    True
    """
    _ensure_builtins()
    if isinstance(spec_or_id, ConstraintSpec):
        spec = spec_or_id
    else:
        constraint_id = str(spec_or_id)
        if driver_factory is None:
            raise ValueError(
                f"register_constraint({constraint_id!r}) needs a driver_factory"
            )
        params = tuple(params)
        if driver_parameter is None:
            ordered = tuple(spec.name for spec in params)

            def driver_parameter(values: Mapping[str, object], _ordered=ordered) -> Hashable:
                resolved = tuple(values[name] for name in _ordered)
                return resolved[0] if len(resolved) == 1 else resolved

        spec = ConstraintSpec(
            constraint_id=constraint_id,
            description=description,
            params=params,
            make_driver=driver_factory,
            driver_parameter=driver_parameter,
            predicate_factory=predicate_factory,
            path_indexed=path_indexed,
            deduplicate=deduplicate,
            stage_one_cap_names=stage_one_cap_names,
        )
    if not replace and spec.constraint_id in _REGISTRY:
        raise ValueError(
            f"constraint id {spec.constraint_id!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[spec.constraint_id] = spec
    return spec


def unregister_constraint(constraint_id: str) -> bool:
    """Remove a registration (mainly for tests); returns whether it existed."""
    _ensure_builtins()
    return _REGISTRY.pop(constraint_id, None) is not None


def get_constraint(constraint_id: str) -> ConstraintSpec:
    """Look up a spec; raises :class:`UnknownConstraintError` if absent."""
    _ensure_builtins()
    spec = _REGISTRY.get(constraint_id)
    if spec is None:
        raise UnknownConstraintError(constraint_id, known=_REGISTRY)
    return spec


def available_constraints() -> List[str]:
    """Sorted ids of every registered constraint."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def constraint_specs() -> List[ConstraintSpec]:
    """All registered specs, sorted by id."""
    _ensure_builtins()
    return [_REGISTRY[constraint_id] for constraint_id in sorted(_REGISTRY)]
