"""Multiprocessing workers for parallel Stage-1 precompute, any constraint.

``multiprocessing`` needs picklable module-level callables; the data graphs
are shipped once per worker through the pool initializer (not once per
task), so precomputing many Stage-1 entries amortises the transfer.  Each
task names a registered constraint and its validated parameters; the worker
resolves the spec from its own registry (inherited via fork on POSIX —
constraints registered at runtime are visible to the pool there; under a
``spawn`` start method only the built-ins re-register) and runs the
constraint's ``mine_minimal``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph

_WORKER_STATE: Dict[str, object] = {}


def init_worker(graphs: Sequence[LabeledGraph], caps: Mapping[str, Optional[int]]) -> None:
    """Pool initializer: stash the data graphs and engine caps once."""
    _WORKER_STATE["graphs"] = list(graphs)
    _WORKER_STATE["caps"] = dict(caps)


def _worker_context(min_support: int, measure_value: str):
    """One MiningContext per (σ, measure) per worker, so its per-graph label
    index is derived once however many tasks the worker processes.
    """
    from repro.core.database import MiningContext, SupportMeasure

    contexts = _WORKER_STATE.setdefault("contexts", {})
    key = (min_support, measure_value)
    if key not in contexts:
        contexts[key] = MiningContext(
            list(_WORKER_STATE["graphs"]), min_support, SupportMeasure(measure_value)
        )
    return contexts[key]


def mine_stage_one(
    task: Tuple[int, str, Dict[str, object], int, str]
) -> Tuple[int, List[object], float]:
    """Mine one Stage-1 entry: ``(slot, constraint_id, params, σ, measure)``."""
    from repro.api.registry import get_constraint

    slot, constraint_id, params, min_support, measure_value = task
    spec = get_constraint(constraint_id)
    context = _worker_context(min_support, measure_value)
    started = time.perf_counter()
    driver = spec.make_driver(params, _WORKER_STATE["caps"], True)
    patterns = driver.mine_minimal(context, spec.driver_parameter(params))
    return slot, list(patterns), time.perf_counter() - started
