"""Typed errors raised by the unified query API.

Every error is a :class:`ValueError` subclass so pre-existing callers (and
the CLI's catch-all) keep working, while new callers can discriminate:

* :class:`QueryError` — base class for anything wrong with a query;
* :class:`MalformedQueryError` — the payload is not even query-shaped
  (wrong container type, missing mandatory envelope fields);
* :class:`UnknownConstraintError` — the constraint id is not registered;
* :class:`ParameterError` — the constraint id is fine but its parameters are
  not, refined into missing / unexpected / wrong-type / out-of-range.

Raising these (rather than ``KeyError``/``TypeError`` escaping from dict
access) is part of the API contract: malformed wire payloads must fail with
a message naming the constraint and the offending parameter.

Each class also has a stable wire *code* (:func:`error_code`), which is what
the serving tier (:mod:`repro.server`) puts into error responses so remote
clients can discriminate without parsing messages.
"""

from __future__ import annotations

from typing import Iterable, Optional


class QueryError(ValueError):
    """Base class: a query (or query payload) is invalid."""


class MalformedQueryError(QueryError):
    """The payload is not a query object at all (wrong shape or envelope)."""


class UnknownConstraintError(QueryError):
    """The requested constraint id has no registered :class:`ConstraintSpec`."""

    def __init__(self, constraint_id: str, known: Iterable[str] = ()) -> None:
        self.constraint_id = constraint_id
        known_ids = sorted(known)
        hint = f" (registered: {', '.join(known_ids)})" if known_ids else ""
        super().__init__(f"unknown constraint id {constraint_id!r}{hint}")


class ParameterError(QueryError):
    """A constraint parameter is missing, unexpected, mistyped or out of range."""

    def __init__(self, constraint_id: str, message: str, parameter: Optional[str] = None) -> None:
        self.constraint_id = constraint_id
        self.parameter = parameter
        super().__init__(f"constraint {constraint_id!r}: {message}")


class MissingParameterError(ParameterError):
    """A required constraint parameter was not supplied."""


class UnexpectedParameterError(ParameterError):
    """The query carries parameters the constraint does not declare."""


class ParameterTypeError(ParameterError):
    """A constraint parameter has the wrong type."""


class ParameterValueError(ParameterError):
    """A constraint parameter is of the right type but out of range."""


#: Most-derived-first mapping from error class to its stable wire code.
_ERROR_CODES = (
    (MissingParameterError, "missing_parameter"),
    (UnexpectedParameterError, "unexpected_parameter"),
    (ParameterTypeError, "parameter_type"),
    (ParameterValueError, "parameter_value"),
    (ParameterError, "invalid_parameter"),
    (UnknownConstraintError, "unknown_constraint"),
    (MalformedQueryError, "malformed_query"),
    (QueryError, "invalid_query"),
)


def error_code(error: BaseException) -> str:
    """The stable wire code for an exception (``"internal_error"`` otherwise).

    Examples
    --------
    >>> error_code(MalformedQueryError("nope"))
    'malformed_query'
    >>> error_code(RuntimeError("boom"))
    'internal_error'
    """
    for cls, code in _ERROR_CODES:
        if isinstance(error, cls):
            return code
    return "internal_error"
