"""The generic wire format: :class:`Query` in, :class:`Result` out.

A :class:`Query` names a registered constraint, carries that constraint's
parameters (validated against its :class:`~repro.api.registry.ParamSpec`
schema at construction time), and the request-level knobs every constraint
shares: support threshold, support measure, ``top_k`` truncation and whether
minimal patterns appear in the result.  It replaces the skinny-specific
``MineRequest(l, δ, σ)`` as the canonical request object across in-process
calls, ``MiningService.serve_batch``, the pattern store and the CLI; the old
class survives as a deprecation shim (see :mod:`repro.service.mining`).

``to_dict``/``from_dict`` define the JSON envelope::

    {"constraint": "diam-le", "params": {"k": 2}, "min_support": 2,
     "top_k": 10, "support_measure": "embeddings", "include_minimal": true}

Malformed payloads raise typed :class:`~repro.api.errors.QueryError`
subclasses — never a bare ``KeyError``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional

from repro.api.errors import MalformedQueryError, QueryError
from repro.api.registry import get_constraint
from repro.core.database import SupportMeasure
from repro.core.patterns import SkinnyPattern

_ENVELOPE_FIELDS = {
    "constraint",
    "params",
    "min_support",
    "sigma",  # historical alias for min_support
    "top_k",
    "support_measure",
    "include_minimal",
}


@dataclass(frozen=True, eq=True)
class Query:
    """One mining request against a registered constraint.

    ``params`` is validated (and normalised: defaults filled in, order
    canonicalised) against the constraint's schema in ``__post_init__``, so a
    constructed ``Query`` is always well-formed.  Like the ``MineRequest`` it
    replaces, a Query is a hashable frozen value object: ``params`` is
    exposed through a read-only mapping view, so a validated query can never
    drift out of sync with its ``cache_key()`` or Stage-1 store key.

    Examples
    --------
    >>> query = Query("skinny", {"length": 5, "delta": 1}, min_support=2)
    >>> (query.constraint_id, query.params["length"], query.min_support)
    ('skinny', 5, 2)
    >>> Query.from_dict(query.to_dict()) == query
    True
    >>> Query("skinny", {"length": 5})  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    repro.api.errors.MissingParameterError: ...
    """

    constraint_id: str
    params: Mapping[str, object] = field(default_factory=dict)
    min_support: int = 1
    top_k: Optional[int] = None
    support_measure: str = SupportMeasure.EMBEDDINGS.value
    include_minimal: bool = True

    def __post_init__(self) -> None:
        spec = get_constraint(self.constraint_id)
        object.__setattr__(
            self, "params", MappingProxyType(spec.validate_params(self.params))
        )
        if not isinstance(self.min_support, int) or isinstance(self.min_support, bool):
            raise QueryError(f"min_support must be an integer, got {self.min_support!r}")
        if self.min_support < 1:
            raise QueryError("min_support must be at least 1")
        if self.top_k is not None:
            try:
                coerced = int(self.top_k)
            except (TypeError, ValueError) as error:
                raise QueryError(f"top_k must be an integer, got {self.top_k!r}") from error
            if coerced < 1:
                raise QueryError("top_k must be positive when given")
            object.__setattr__(self, "top_k", coerced)
        try:
            measure = SupportMeasure(self.support_measure)
        except ValueError as error:
            raise QueryError(
                f"unknown support measure {self.support_measure!r} "
                f"(expected one of {[m.value for m in SupportMeasure]})"
            ) from error
        object.__setattr__(self, "support_measure", measure.value)
        object.__setattr__(self, "include_minimal", bool(self.include_minimal))

    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the params mapping;
        # hash the same canonical identity the result cache keys on.
        return hash(
            (
                self.constraint_id,
                tuple(sorted(self.params.items())),
                self.min_support,
                self.top_k,
                self.support_measure,
                self.include_minimal,
            )
        )

    @property
    def measure(self) -> SupportMeasure:
        return SupportMeasure(self.support_measure)

    def cache_key(self) -> str:
        """Canonical identity of the query (the result-cache key)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> Dict[str, object]:
        return {
            "constraint": self.constraint_id,
            "params": dict(self.params),
            "min_support": self.min_support,
            "top_k": self.top_k,
            "support_measure": self.support_measure,
            "include_minimal": self.include_minimal,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Query":
        """Parse the JSON envelope; typed errors on any malformation."""
        if not isinstance(payload, Mapping):
            raise MalformedQueryError(f"query payload must be an object, got {payload!r}")
        if "constraint" not in payload:
            raise MalformedQueryError(
                f"query payload {dict(payload)!r} is missing the 'constraint' field"
            )
        unknown = sorted(set(payload) - _ENVELOPE_FIELDS)
        if unknown:
            raise MalformedQueryError(
                f"query payload has unknown field(s): {', '.join(unknown)} "
                "(constraint parameters belong under 'params')"
            )
        constraint_id = payload["constraint"]
        if not isinstance(constraint_id, str):
            raise MalformedQueryError(f"'constraint' must be a string, got {constraint_id!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise MalformedQueryError(f"'params' must be an object, got {params!r}")
        min_support = payload.get("min_support", payload.get("sigma", 1))
        if not isinstance(min_support, int) or isinstance(min_support, bool):
            raise MalformedQueryError(f"'min_support' must be an integer, got {min_support!r}")
        return cls(
            constraint_id=constraint_id,
            params=params,
            min_support=min_support,
            top_k=payload.get("top_k"),
            support_measure=payload.get(
                "support_measure", SupportMeasure.EMBEDDINGS.value
            ),
            include_minimal=bool(payload.get("include_minimal", True)),
        )


def query_from_payload(payload: Mapping[str, object]) -> Query:
    """Accept either the Query envelope or a legacy ``MineRequest`` payload.

    Payloads carrying a ``constraint`` field follow the new format; payloads
    shaped like the pre-redesign ``{"length": l, "delta": d, ...}`` wire
    format are converted to an equivalent skinny :class:`Query` with a
    :class:`DeprecationWarning`.
    """
    if not isinstance(payload, Mapping):
        raise MalformedQueryError(f"request payload must be an object, got {payload!r}")
    if "constraint" in payload:
        return Query.from_dict(payload)
    if "length" in payload and "delta" in payload:
        warnings.warn(
            "skinny-only request payloads ({'length', 'delta', ...}) are deprecated; "
            "use {'constraint': 'skinny', 'params': {'length': ..., 'delta': ...}, ...}",
            DeprecationWarning,
            stacklevel=2,
        )
        envelope = {
            key: payload[key]
            for key in ("min_support", "top_k", "support_measure", "include_minimal")
            if key in payload
        }
        if "sigma" in payload and "min_support" not in envelope:
            envelope["min_support"] = payload["sigma"]
        for name in ("length", "delta"):
            if not isinstance(payload[name], int) or isinstance(payload[name], bool):
                raise MalformedQueryError(
                    f"legacy payload field {name!r} must be an integer, got {payload[name]!r}"
                )
        return Query(
            constraint_id="skinny",
            params={"length": payload["length"], "delta": payload["delta"]},
            **envelope,
        )
    raise MalformedQueryError(
        f"request payload {dict(payload)!r} is neither a Query envelope "
        "(needs 'constraint') nor a legacy mine request (needs 'length' and 'delta')"
    )


@dataclass(frozen=True)
class ResultError:
    """A typed error carried inside a :class:`Result` on the wire.

    ``code`` is a stable machine-readable identifier (see
    :func:`repro.api.errors.error_code` for the query-error codes; the
    serving tier adds ``"service_unavailable"``, ``"deadline_exceeded"`` and
    ``"internal_error"``).  ``retriable`` tells clients whether the same
    request may succeed later (load shed, deadline); ``partial`` is always
    ``False`` in this release — an errored query never returns a partial
    pattern list — and is carried explicitly so clients need not infer it.

    Examples
    --------
    >>> error = ResultError("deadline_exceeded", "budget exhausted", retriable=True)
    >>> ResultError.from_dict(error.to_dict()) == error
    True
    """

    code: str
    message: str
    retriable: bool = False
    partial: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "retriable": self.retriable,
            "partial": self.partial,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ResultError":
        """Inverse of :meth:`to_dict` (exact round trip)."""
        if not isinstance(payload, Mapping) or "code" not in payload:
            raise MalformedQueryError(
                f"result error payload must be an object with a 'code' field, "
                f"got {payload!r}"
            )
        return cls(
            code=str(payload["code"]),
            message=str(payload.get("message", "")),
            retriable=bool(payload.get("retriable", False)),
            partial=bool(payload.get("partial", False)),
        )


@dataclass
class QueryStats:
    """Per-query timing and provenance accounting.

    ``level_statistics`` carries the Stage-2 growth counters of *this* query
    — including the emission-fast-path ones (``canonical_incremental_hits``,
    ``invariant_cache_hits``, ``probes_batched``) and the phase timings — as
    a plain dict, or ``None`` when Stage 2 never ran (result-cache hits) or
    the constraint's driver grows without LevelGrow.  The engine builds one
    driver per query, so these counters are per-request by construction and
    never bleed into the next report (the PR-3 ``SkinnyMine`` counter-merge
    bug class; pinned by ``tests/service``).

    Timing invariant: ``total_seconds == stage_one_seconds +
    stage_two_seconds + overhead_seconds`` always holds — the engine derives
    the residual (dispatch, cache probes, dedup/ranking) explicitly as
    ``overhead_seconds`` instead of letting an independently measured total
    drift against the stage sum.  On a result-cache hit both stage times are
    zero and the whole total is overhead.

    ``trace`` is the per-query span tree (:meth:`repro.obs.Span.to_dict`
    form) when the engine ran with tracing enabled, else ``None``; it
    round-trips through :meth:`to_dict`/:meth:`from_dict` and
    :meth:`Result.to_dict`/:meth:`Result.from_dict`.

    The serving tier (:mod:`repro.server`) stamps three more fields onto
    every remotely served query: ``budget_ms`` (the request's deadline
    budget, ``None`` when the query ran without one), ``queue_seconds``
    (time spent parked in the admission queue before a worker picked the
    query up) and ``snapshot_generation`` (which immutable store/data
    snapshot answered it — the load driver uses this to check answers
    against the right dataset version).  All three round-trip exactly,
    including their ``None`` states.
    """

    request_key: str
    stage_one_seconds: float = 0.0
    stage_two_seconds: float = 0.0
    total_seconds: float = 0.0
    overhead_seconds: float = 0.0
    served_from_store: bool = False
    result_cache_hit: bool = False
    num_minimal_patterns: int = 0
    num_patterns: int = 0
    level_statistics: Optional[Dict[str, object]] = None
    trace: Optional[Dict[str, object]] = None
    budget_ms: Optional[int] = None
    queue_seconds: float = 0.0
    snapshot_generation: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "request": json.loads(self.request_key),
            "stage_one_seconds": self.stage_one_seconds,
            "stage_two_seconds": self.stage_two_seconds,
            "total_seconds": self.total_seconds,
            "overhead_seconds": self.overhead_seconds,
            "served_from_store": self.served_from_store,
            "result_cache_hit": self.result_cache_hit,
            "num_minimal_patterns": self.num_minimal_patterns,
            "num_patterns": self.num_patterns,
            "level_statistics": self.level_statistics,
            "trace": self.trace,
            "budget_ms": self.budget_ms,
            "queue_seconds": self.queue_seconds,
            "snapshot_generation": self.snapshot_generation,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QueryStats":
        """Inverse of :meth:`to_dict` (exact round trip, trace included)."""
        if not isinstance(payload, Mapping) or "request" not in payload:
            raise MalformedQueryError(
                f"query stats payload must be an object with a 'request' field, "
                f"got {payload!r}"
            )
        request_key = json.dumps(
            payload["request"], sort_keys=True, separators=(",", ":")
        )
        return cls(
            request_key=request_key,
            stage_one_seconds=float(payload.get("stage_one_seconds", 0.0)),
            stage_two_seconds=float(payload.get("stage_two_seconds", 0.0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            overhead_seconds=float(payload.get("overhead_seconds", 0.0)),
            served_from_store=bool(payload.get("served_from_store", False)),
            result_cache_hit=bool(payload.get("result_cache_hit", False)),
            num_minimal_patterns=int(payload.get("num_minimal_patterns", 0)),
            num_patterns=int(payload.get("num_patterns", 0)),
            level_statistics=payload.get("level_statistics"),
            trace=payload.get("trace"),
            budget_ms=(
                None if payload.get("budget_ms") is None else int(payload["budget_ms"])
            ),
            queue_seconds=float(payload.get("queue_seconds", 0.0)),
            snapshot_generation=(
                None
                if payload.get("snapshot_generation") is None
                else int(payload["snapshot_generation"])
            ),
        )


@dataclass
class Result:
    """Patterns plus the stats of the query that produced them.

    A Result is also the serving tier's response body: ``error`` (a
    :class:`ResultError`) is set on failed queries, in which case
    ``patterns`` is empty and ``stats`` may be ``None`` (a request shed at
    admission, or one whose payload never parsed into a query, has no
    timing to report).  ``to_dict``/``from_dict`` round-trip exactly for
    both shapes — error results and cache-hit results with their ``None``
    stats fields included (pinned by ``tests/api/test_wire_roundtrip.py``).

    Examples
    --------
    >>> from repro.api import MiningEngine
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> engine = MiningEngine(graph_from_paths([list("abc"), list("abc")]))
    >>> result = engine.run(Query("path", {"length": 2}, min_support=2))
    >>> (len(result.patterns), result.stats.result_cache_hit)
    (1, False)
    >>> sorted(result.to_dict())
    ['num_patterns', 'stats']
    >>> failed = Result.failed(ResultError("deadline_exceeded", "over budget"))
    >>> sorted(failed.to_dict())
    ['error', 'num_patterns', 'stats']
    >>> Result.from_dict(failed.to_dict()) == failed
    True
    """

    query: Optional[Query]
    patterns: List[SkinnyPattern]
    stats: Optional[QueryStats]
    error: Optional[ResultError] = None

    @classmethod
    def failed(
        cls,
        error: ResultError,
        query: Optional[Query] = None,
        stats: Optional[QueryStats] = None,
    ) -> "Result":
        """An error result (no patterns; stats only if something was timed)."""
        return cls(query=query, patterns=[], stats=stats, error=error)

    def to_dict(self, include_patterns: bool = False) -> Dict[str, object]:
        from repro.graph.io import graph_to_record

        payload: Dict[str, object] = {
            "stats": self.stats.to_dict() if self.stats is not None else None,
            "num_patterns": len(self.patterns),
        }
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        if include_patterns:
            payload["patterns"] = [
                {
                    "support": pattern.support,
                    "diameter_length": pattern.diameter_length,
                    "num_vertices": pattern.num_vertices,
                    "num_edges": pattern.num_edges,
                    "diameter_labels": list(pattern.diameter_labels()),
                    "graph": graph_to_record(pattern.graph),
                }
                for pattern in self.patterns
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Result":
        """Rebuild the stats/error side of a serialised result.

        The query is reconstructed from the stats' request envelope (when
        stats are present) and the :class:`QueryStats` (trace included)
        round-trip exactly; pattern objects are summaries on the wire, not
        full embeddings, so ``patterns`` comes back empty —
        ``stats.num_patterns`` keeps the count.
        """
        if not isinstance(payload, Mapping) or "stats" not in payload:
            raise MalformedQueryError(
                f"result payload must be an object with a 'stats' field, got {payload!r}"
            )
        stats_payload = payload["stats"]
        stats = (
            QueryStats.from_dict(stats_payload) if stats_payload is not None else None
        )
        query = (
            Query.from_dict(json.loads(stats.request_key))
            if stats is not None
            else None
        )
        error_payload = payload.get("error")
        error = (
            ResultError.from_dict(error_payload) if error_payload is not None else None
        )
        return cls(query=query, patterns=[], stats=stats, error=error)
