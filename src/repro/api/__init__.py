"""repro.api — the unified constraint-plugin query surface.

One typed facade over the whole system: a :class:`Query` names any
registered constraint and is served identically by the in-process
:class:`MiningEngine`, the batched :class:`repro.service.MiningService`, the
disk-backed :class:`repro.index.store.PatternStore` (entries keyed by
``constraint_id``) and the ``repro mine --constraint <id>`` CLI.

* :mod:`repro.api.registry` — :func:`register_constraint` plus the built-in
  ``skinny`` / ``path`` / ``diam-le`` registrations;
* :mod:`repro.api.query` — :class:`Query` / :class:`Result` wire objects
  with schema validation and JSON envelopes;
* :mod:`repro.api.engine` — :class:`MiningEngine`, the generic two-stage
  request server (store-backed Stage 1, driver-dispatched Stage 2, result
  cache, delta-driven maintenance);
* :mod:`repro.api.errors` — the typed error hierarchy.
"""

from repro.api.engine import MiningEngine
from repro.api.errors import (
    MalformedQueryError,
    MissingParameterError,
    ParameterError,
    ParameterTypeError,
    ParameterValueError,
    QueryError,
    UnexpectedParameterError,
    UnknownConstraintError,
    error_code,
)
from repro.api.query import (
    Query,
    QueryStats,
    Result,
    ResultError,
    query_from_payload,
)
from repro.api.registry import (
    ConstraintSpec,
    ParamSpec,
    available_constraints,
    constraint_specs,
    get_constraint,
    register_constraint,
    unregister_constraint,
)

__all__ = [
    "ConstraintSpec",
    "MalformedQueryError",
    "MiningEngine",
    "MissingParameterError",
    "ParamSpec",
    "ParameterError",
    "ParameterTypeError",
    "ParameterValueError",
    "Query",
    "QueryError",
    "QueryStats",
    "Result",
    "ResultError",
    "UnexpectedParameterError",
    "UnknownConstraintError",
    "available_constraints",
    "constraint_specs",
    "error_code",
    "get_constraint",
    "query_from_payload",
    "register_constraint",
    "unregister_constraint",
]
