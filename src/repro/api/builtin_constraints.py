"""Built-in constraint registrations: ``skinny``, ``path`` and ``diam-le``.

Each registration wires a concrete :class:`repro.core.framework` driver into
the registry so the constraint is servable through :class:`MiningEngine`,
``MiningService.serve_batch``, the disk-backed pattern store and the
``repro mine --constraint <id>`` CLI — the paper's Section-5 claim that
SkinnyMine is one instance of a generic recipe, made executable.

This module is imported lazily by :mod:`repro.api.registry` on first lookup;
import it directly only for its side effect (e.g. in tests that reset the
registry).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.api.registry import Caps, ConstraintSpec, ParamSpec, register_constraint
from repro.core.framework import (
    BoundedDiameterDriver,
    PathConstraintDriver,
    SkinnyConstraintDriver,
    bounded_diameter_constraint,
    path_shape_constraint,
    skinny_constraint,
)
from repro.index.incremental import SKINNY_CONSTRAINT_ID

#: Constraint id of the l-long path constraint (Stage-1 entries share the
#: repairable frequent-path layout with the skinny constraint).
PATH_CONSTRAINT_ID = "path"
#: Constraint id of the bounded-diameter constraint diam(P) ≤ K.
BOUNDED_DIAMETER_CONSTRAINT_ID = "diam-le"


def _make_skinny_driver(
    params: Mapping[str, object], caps: Caps, include_minimal: bool
) -> SkinnyConstraintDriver:
    return SkinnyConstraintDriver(
        max_paths_per_length=caps.get("max_paths_per_length"),
        max_patterns_per_diameter=caps.get("max_patterns_per_diameter"),
        include_minimal=include_minimal,
        stage1_mode=caps.get("stage1_mode"),
    )


def _skinny_parameter(params: Mapping[str, object]) -> Hashable:
    return (params["length"], params["delta"])


def _make_path_driver(
    params: Mapping[str, object], caps: Caps, include_minimal: bool
) -> PathConstraintDriver:
    return PathConstraintDriver(
        max_paths_per_length=caps.get("max_paths_per_length"),
        include_minimal=include_minimal,
        stage1_mode=caps.get("stage1_mode"),
    )


def _path_parameter(params: Mapping[str, object]) -> Hashable:
    return params["length"]


def _make_diameter_driver(
    params: Mapping[str, object], caps: Caps, include_minimal: bool
) -> BoundedDiameterDriver:
    return BoundedDiameterDriver(
        max_edges=params.get("max_edges"),
        max_patterns=caps.get("max_patterns_per_diameter"),
        include_minimal=include_minimal,
    )


def _diameter_parameter(params: Mapping[str, object]) -> Hashable:
    return params["k"]


register_constraint(
    ConstraintSpec(
        constraint_id=SKINNY_CONSTRAINT_ID,
        description=(
            "l-long δ-skinny patterns (the paper's SkinnyMine): canonical "
            "diameter of length l, every vertex within δ of it"
        ),
        params=(
            ParamSpec("length", int, required=True, minimum=1, stage_one=True,
                      doc="diameter length l"),
            ParamSpec("delta", int, required=True, minimum=0,
                      doc="skinniness bound δ"),
        ),
        make_driver=_make_skinny_driver,
        driver_parameter=_skinny_parameter,
        predicate_factory=lambda params: skinny_constraint(
            params["length"], params["delta"]
        ),
        path_indexed=True,
        stage_one_cap_names=("max_paths_per_length", "stage1_mode"),
    )
)

# Note: the path constraint's Stage-1 entries are the same frequent l-paths
# the skinny constraint mines, stored again under constraint_id "path".  The
# duplication is deliberate: entries stay isolated per constraint id, so
# repair, invalidation and cap-keying never have to reason about sharing —
# at the cost of re-mining when both constraints index the same length.
register_constraint(
    ConstraintSpec(
        constraint_id=PATH_CONSTRAINT_ID,
        description=(
            "l-long path patterns: the pattern is a simple path of exactly l "
            "edges (Stage 2 is the identity)"
        ),
        params=(
            ParamSpec("length", int, required=True, minimum=1, stage_one=True,
                      doc="path length l"),
        ),
        make_driver=_make_path_driver,
        driver_parameter=_path_parameter,
        predicate_factory=lambda params: path_shape_constraint(params["length"]),
        path_indexed=True,
        stage_one_cap_names=("max_paths_per_length", "stage1_mode"),
    )
)

register_constraint(
    ConstraintSpec(
        constraint_id=BOUNDED_DIAMETER_CONSTRAINT_ID,
        description=(
            "bounded-diameter patterns diam(P) <= k, grown from frequent "
            "single-edge minimal patterns"
        ),
        params=(
            ParamSpec("k", int, required=True, minimum=1,
                      doc="diameter bound K"),
            ParamSpec("max_edges", int, required=False, default=6, minimum=1,
                      nullable=True,
                      doc="growth cap on pattern edges; null disables the cap"),
        ),
        make_driver=_make_diameter_driver,
        driver_parameter=_diameter_parameter,
        predicate_factory=lambda params: bounded_diameter_constraint(params["k"]),
        deduplicate=True,
    )
)
