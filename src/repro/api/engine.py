"""The :class:`MiningEngine` facade: one entry point, any registered constraint.

The engine owns the machinery that used to be welded to the skinny constraint
inside ``MiningService``:

* **Stage 1** — minimal constraint-satisfying patterns are looked up in a
  :class:`repro.index.store.PatternStore` under
  ``StoreKey(dataset fingerprint, constraint id, stage-one parameter)``; a
  miss runs the constraint's driver and persists the result.  Different
  constraints coexist in one store directory because ``constraint_id`` is now
  a load-bearing part of the key, not a constant.
* **Stage 2** — the driver grows each minimal pattern under the constraint;
  results are optionally deduplicated (overlapping clusters), ranked and
  ``top_k``-truncated.
* A canonical-key LRU **result cache** makes repeated queries O(1), and
  every query appends a :class:`~repro.api.query.QueryStats` to ``stats_log``.
* **apply_delta** routes data edits through
  :class:`repro.index.incremental.IndexMaintainer`: path-indexed constraints
  (``skinny``, ``path``) are repaired in place, other constraints' stale
  entries are invalidated so a cold rebuild stays correct.

:class:`repro.service.mining.MiningService` subclasses this engine and layers
the legacy skinny-specific API (``MineRequest``, length-based ``precompute``
with multiprocessing) on top.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.query import Query, QueryStats, Result
from repro.api.registry import ConstraintSpec, constraint_specs, get_constraint
from repro.core.database import (
    EdgeDelta,
    GraphDelta,
    MiningContext,
    SupportMeasure,
    touched_graph_indices,
)
from repro.core.diammine import Stage1Mode, resolve_stage1_mode
from repro.core.levelgrow import DiameterDescriptorCache
from repro.core.patterns import SkinnyPattern
from repro.graph.csr import CSRGraph, LabelPalette
from repro.graph.io import dataset_fingerprint
from repro.graph.labeled_graph import LabeledGraph
from repro.index.incremental import IndexMaintainer, RepairReport
from repro.index.store import IndexEntry, MemoryPatternStore, PatternStore, StoreKey
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import NULL_TRACER, Tracer


class MiningEngine:
    """Serve :class:`Query` objects for any registered constraint.

    Parameters
    ----------
    graphs:
        The data graph (single-graph setting) or graph database.  The engine
        owns these objects: data edits must go through :meth:`apply_delta`.
    store:
        Stage-1 index backend; defaults to a process-local
        :class:`MemoryPatternStore`.  Pass a
        :class:`repro.index.store.DiskPatternStore` to share the offline
        stage across processes and runs.
    result_cache_size:
        Number of complete results kept in the LRU result cache.
    max_paths_per_length / max_patterns_per_diameter:
        Optional safety caps forwarded to constraint drivers that honour them
        (Stage-1 path caps for ``skinny``/``path``, per-cluster growth caps
        for ``skinny``/``diam-le``).  Engaged Stage-1 caps become part of the
        store key so truncated entries are never served to uncapped engines.
    stage1_mode:
        Stage-1 exactness contract (:class:`repro.core.diammine.Stage1Mode`)
        for the path-indexed constraints.  The default ``EXACT`` is the
        store-build contract — entries contain every frequent minimal
        pattern under any support measure, which is what incremental repair
        assumes.  ``PRUNED`` (the paper's literal Algorithm 2 thresholding,
        heuristic under embedding support) is opt-in; the engaged mode is
        always part of the :class:`~repro.index.store.StoreKey` parameter,
        so exact and pruned entries never alias and pruned entries are
        invalidated rather than repaired on data edits.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When enabled, every query is
        wrapped in a span tree (dispatch, result cache, Stage-1 store
        access, Stage-2 per-level growth, aggregate emission phases) and the
        tree is attached to ``stats.trace``.  Defaults to the shared no-op
        tracer, whose per-span cost is bounded (the bench-smoke overhead
        gate holds it under 3% of Stage 2).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; defaults to the
        process-wide :func:`repro.obs.default_registry`.  The engine
        publishes query/stage latencies and cache/store hit counters per
        query (see ``docs/OBSERVABILITY.md`` for the metric catalogue).
    descriptor_cache:
        Optional pre-populated :class:`DiameterDescriptorCache` to adopt
        instead of starting empty.  Descriptors are data-independent, so a
        cache can be shared across engines over different data or snapshot
        generations; :meth:`fork` uses this to let sibling worker engines
        pool their Loop-Invariant work.

    Examples
    --------
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> engine = MiningEngine(graph_from_paths([list("abcd"), list("abcd")]))
    >>> result = engine.run(Query("skinny", {"length": 3, "delta": 1}, min_support=2))
    >>> [pattern.support for pattern in result.patterns]
    [2]
    >>> engine.stage1_mode
    <Stage1Mode.EXACT: 'exact'>
    """

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        store: Optional[PatternStore] = None,
        result_cache_size: int = 128,
        max_paths_per_length: Optional[int] = None,
        max_patterns_per_diameter: Optional[int] = None,
        stage1_mode: Union[str, Stage1Mode, None] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        descriptor_cache: Optional[DiameterDescriptorCache] = None,
    ) -> None:
        self._graphs: List[LabeledGraph] = (
            [graphs] if isinstance(graphs, LabeledGraph) else list(graphs)
        )
        if not self._graphs:
            raise ValueError(f"{type(self).__name__} requires at least one data graph")
        self._store = store if store is not None else MemoryPatternStore()
        self._fingerprint = dataset_fingerprint(self._graphs)
        self._result_cache: "OrderedDict[str, List[SkinnyPattern]]" = OrderedDict()
        self._result_cache_size = result_cache_size
        self._contexts: Dict[tuple, MiningContext] = {}
        # Engine-wide frozen CSR pool, shared *by reference* with every
        # MiningContext this engine creates: a transaction frozen for one
        # (σ, measure) query serves all others, and the single palette
        # keeps label codes stable across views (docs/DATA_PLANE.md).
        # ``apply_delta`` invalidates only the indices a delta writes to;
        # ``adopt_frozen_views`` seeds the pool from a previous snapshot
        # generation's engine.
        self._frozen_views: Dict[int, CSRGraph] = {}
        self._frozen_palette = LabelPalette()
        self._stage1_mode = resolve_stage1_mode(stage1_mode)
        self._caps: Dict[str, object] = {
            "max_paths_per_length": max_paths_per_length,
            "max_patterns_per_diameter": max_patterns_per_diameter,
            # Always present (never None): the exactness mode is part of
            # every path-indexed Stage-1 store key.
            "stage1_mode": self._stage1_mode.value,
        }
        # Engine-lifetime Loop-Invariant descriptor cache, injected into
        # each query's driver: a descriptor is a pure function of the
        # abstract pattern (no data, threshold or measure involved), so it
        # never goes stale — not even across apply_delta — which also makes
        # it safe to share across forked sibling engines (the per-request
        # counters stay on the per-query driver).
        self._descriptor_cache = (
            descriptor_cache if descriptor_cache is not None else DiameterDescriptorCache()
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else default_registry()
        self.stats_log: List[QueryStats] = []

    @property
    def tracer(self) -> Tracer:
        """The engine's tracer (the shared no-op instance when disabled)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this engine publishes metrics into."""
        return self._metrics

    @property
    def stage1_mode(self) -> Stage1Mode:
        """The engine's Stage-1 exactness mode (keyed into every store entry)."""
        return self._stage1_mode

    @property
    def caps(self) -> Dict[str, object]:
        """The engine's driver caps/mode dict (a copy; the worker-init payload)."""
        return dict(self._caps)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> PatternStore:
        return self._store

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def graphs(self) -> List[LabeledGraph]:
        return self._graphs

    def fork(
        self,
        store: Optional[PatternStore] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        result_cache_size: Optional[int] = None,
    ) -> "MiningEngine":
        """A sibling engine over the same data, safe for another thread.

        The fork shares the graph objects (both sides must treat them as
        read-only — data edits go through the serving tier's snapshot
        manager, never through a fork), the Stage-1 caps and exactness mode,
        and the engine-lifetime descriptor cache.  Everything that is *not*
        safe to share across threads is private to the fork: result/context
        caches, stats log, tracer and metrics registry.  Pass ``store`` to
        point the fork at a snapshot view instead of the parent's store.

        The fork is always a plain :class:`MiningEngine`, even when called
        on a subclass: subclass extras (e.g. the legacy service shims) are
        deliberately not inherited by worker engines.
        """
        forked = MiningEngine(
            self._graphs,
            store=store if store is not None else self._store,
            result_cache_size=(
                result_cache_size
                if result_cache_size is not None
                else self._result_cache_size
            ),
            max_paths_per_length=self._caps["max_paths_per_length"],
            max_patterns_per_diameter=self._caps["max_patterns_per_diameter"],
            stage1_mode=self._stage1_mode,
            tracer=tracer,
            metrics=metrics,
            descriptor_cache=self._descriptor_cache,
        )
        return forked

    def _context(self, min_support: int, measure: SupportMeasure) -> MiningContext:
        key = (min_support, measure.value)
        context = self._contexts.get(key)
        if context is None:
            context = MiningContext(
                self._graphs,
                min_support,
                measure,
                frozen_views=self._frozen_views,
                palette=self._frozen_palette,
            )
            self._contexts[key] = context
        return context

    # ------------------------------------------------------------------ #
    # Stage 1: the persistent index
    # ------------------------------------------------------------------ #
    def _stage_one_key(self, spec: ConstraintSpec, query: Query) -> StoreKey:
        parameter = spec.stage_one_parameter(
            query.params, query.min_support, query.support_measure, self._caps
        )
        return StoreKey.make(self._fingerprint, spec.constraint_id, parameter)

    def stage_one_key(self, query: Query) -> StoreKey:
        """The Stage-1 store key this engine would use for ``query``.

        Public so schedulers (the serving tier's worker pool) can classify a
        query as warm (``key in engine.store``) or cold before dispatching
        it, without running it.  Raises the usual typed errors for unknown
        constraints or invalid parameters.
        """
        return self._stage_one_key(get_constraint(query.constraint_id), query)

    def _stage_one(self, spec: ConstraintSpec, query: Query) -> Tuple[list, bool, float]:
        """Fetch (or build and persist) the query's Stage-1 entry.

        Returns ``(minimal_patterns, served_from_store, seconds)`` where
        ``seconds`` is the wall-clock cost paid by *this* call.
        """
        key = self._stage_one_key(spec, query)
        started = time.perf_counter()
        with self._tracer.span("store.get", constraint=spec.constraint_id) as span:
            entry = self._store.get(key)
            span.annotate(hit=entry is not None)
        if entry is not None:
            self._metrics.counter(
                "repro_store_hits_total", "Stage-1 store lookups answered from the index"
            ).inc()
            return entry.patterns, True, time.perf_counter() - started
        self._metrics.counter(
            "repro_store_misses_total", "Stage-1 store lookups that fell through to mining"
        ).inc()
        context = self._context(query.min_support, query.measure)
        driver = spec.make_driver(query.params, self._caps, True)
        if hasattr(driver, "tracer"):
            driver.tracer = self._tracer
        with self._tracer.span("stage1.mine", constraint=spec.constraint_id):
            minimal = driver.mine_minimal(context, spec.driver_parameter(query.params))
        seconds = time.perf_counter() - started
        with self._tracer.span("store.put", constraint=spec.constraint_id):
            self._store.put(
                IndexEntry(key=key, patterns=list(minimal), build_seconds=seconds)
            )
        return minimal, False, seconds

    def precompute_queries(
        self, queries: Iterable[Query], processes: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Warm the Stage-1 store for a batch of queries; returns a summary row each.

        ``processes > 1`` distributes cold entries over a ``multiprocessing``
        pool (the graphs are shipped to each worker once); entries already in
        the store are never recomputed, and queries sharing a Stage-1 key are
        mined once.  Works for any registered constraint — the workers
        resolve drivers from the registry.
        """
        query_list = list(queries)
        summaries: List[Optional[Dict[str, object]]] = [None] * len(query_list)

        def summary(spec, query, num_patterns, served, seconds):
            return {
                "constraint_id": spec.constraint_id,
                "parameter": spec.stage_one_parameter(
                    query.params, query.min_support, query.support_measure, self._caps
                ),
                "num_patterns": num_patterns,
                "served_from_store": served,
                "seconds": seconds,
            }

        cold: "OrderedDict[StoreKey, List[int]]" = OrderedDict()
        for slot, query in enumerate(query_list):
            spec = get_constraint(query.constraint_id)
            key = self._stage_one_key(spec, query)
            entry = None if key in cold else self._store.get(key)
            if entry is not None:
                summaries[slot] = summary(spec, query, len(entry.patterns), True, 0.0)
            else:
                cold.setdefault(key, []).append(slot)

        def record(key: StoreKey, patterns: List[object], seconds: float) -> None:
            self._store.put(
                IndexEntry(key=key, patterns=list(patterns), build_seconds=seconds)
            )
            for slot in cold[key]:
                query = query_list[slot]
                spec = get_constraint(query.constraint_id)
                summaries[slot] = summary(spec, query, len(patterns), False, seconds)

        if processes is not None and processes > 1 and len(cold) > 1:
            import multiprocessing

            from repro.api.workers import init_worker, mine_stage_one

            tasks = []
            keys = list(cold)
            for task_index, key in enumerate(keys):
                query = query_list[cold[key][0]]
                tasks.append(
                    (
                        task_index,
                        query.constraint_id,
                        dict(query.params),
                        query.min_support,
                        query.support_measure,
                    )
                )
            with multiprocessing.Pool(
                processes=min(processes, len(tasks)),
                initializer=init_worker,
                initargs=(self._graphs, self._caps),
            ) as pool:
                for task_index, patterns, seconds in pool.imap_unordered(
                    mine_stage_one, tasks
                ):
                    record(keys[task_index], patterns, seconds)
        else:
            for key in cold:
                query = query_list[cold[key][0]]
                spec = get_constraint(query.constraint_id)
                patterns, _, seconds = self._stage_one(spec, query)
                for slot in cold[key]:
                    extra = query_list[slot]
                    extra_spec = get_constraint(extra.constraint_id)
                    summaries[slot] = summary(
                        extra_spec, extra, len(patterns), False, seconds
                    )
        return summaries

    # ------------------------------------------------------------------ #
    # Stage 2 + query serving
    # ------------------------------------------------------------------ #
    @staticmethod
    def _deduplicated(patterns: List[SkinnyPattern]) -> List[SkinnyPattern]:
        """Collapse isomorphic results reached from different minimal patterns."""
        best: Dict[tuple, SkinnyPattern] = {}
        order: List[tuple] = []
        for pattern in patterns:
            key = pattern.canonical_form()
            kept = best.get(key)
            if kept is None:
                best[key] = pattern
                order.append(key)
            elif pattern.support > kept.support:
                best[key] = pattern
        return [best[key] for key in order]

    @staticmethod
    def _ranked(patterns: List[SkinnyPattern], top_k: Optional[int]) -> List[SkinnyPattern]:
        ranked = sorted(
            patterns,
            key=lambda pattern: (
                -pattern.support,
                pattern.num_edges,
                pattern.diameter_labels(),
            ),
        )
        return ranked if top_k is None else ranked[:top_k]

    def run(self, query: Query) -> Result:
        """Serve one query (result cache → warm index → cold compute).

        The returned ``stats`` satisfy ``total_seconds == stage_one_seconds
        + stage_two_seconds + overhead_seconds`` exactly: the residual the
        engine spends outside the two stages (dispatch, cache bookkeeping,
        stats assembly) is derived and surfaced instead of silently drifting
        into ``total_seconds``.  With an enabled tracer the per-query span
        tree is attached to ``stats.trace``.
        """
        with self._tracer.span("query", constraint=query.constraint_id) as query_span:
            patterns, stats = self._serve(query, query_span)
        if self._tracer.enabled:
            stats.trace = query_span.to_dict()
        labels = {"constraint": query.constraint_id}
        self._metrics.counter(
            "repro_queries_total", "Queries served by the engine", labels=labels
        ).inc()
        self._metrics.histogram(
            "repro_query_seconds", "End-to-end query latency", labels=labels
        ).observe(stats.total_seconds)
        self.stats_log.append(stats)
        return Result(query=query, patterns=patterns, stats=stats)

    def _serve(self, query: Query, query_span) -> Tuple[List[SkinnyPattern], QueryStats]:
        """The :meth:`run` body, executed inside the per-query span."""
        key = query.cache_key()
        started = time.perf_counter()
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            query_span.annotate(result_cache_hit=True)
            self._metrics.counter(
                "repro_result_cache_hits_total",
                "Queries answered from the canonical-key result cache",
            ).inc()
            measured = time.perf_counter() - started
            stats = QueryStats(
                request_key=key,
                total_seconds=measured,
                # No stage ran: the whole measured time is engine overhead.
                overhead_seconds=measured,
                served_from_store=False,  # the store was never consulted
                result_cache_hit=True,
                num_patterns=len(cached),
            )
            return list(cached), stats

        self._metrics.counter(
            "repro_result_cache_misses_total",
            "Queries that missed the result cache and ran the pipeline",
        ).inc()
        spec = get_constraint(query.constraint_id)
        minimal, from_store, stage_one = self._stage_one(spec, query)
        context = self._context(query.min_support, query.measure)
        driver = spec.make_driver(query.params, self._caps, query.include_minimal)
        if hasattr(driver, "descriptor_cache"):
            # Share the engine-lifetime descriptor memo with this request's
            # driver (the driver's counters remain per-request).
            driver.descriptor_cache = self._descriptor_cache
        if hasattr(driver, "tracer"):
            driver.tracer = self._tracer
        parameter = spec.driver_parameter(query.params)
        stage_two_start = time.perf_counter()
        patterns: List[SkinnyPattern] = []
        with self._tracer.span("stage2", constraint=spec.constraint_id) as stage_span:
            for minimal_pattern in minimal:
                patterns.extend(driver.grow(context, minimal_pattern, parameter))
            if spec.deduplicate:
                patterns = self._deduplicated(patterns)
            patterns = self._ranked(patterns, query.top_k)
            stage_span.annotate(patterns=len(patterns))
            # Constraint drivers that grow through LevelGrow expose
            # per-request counters (the driver instance is built fresh for
            # this query, so the numbers can never leak from an earlier
            # request).  Emission phases are accumulated per candidate —
            # far too hot for a span each — and attached here as pre-timed
            # aggregate spans.
            level_statistics = getattr(driver, "statistics", None)
            if level_statistics is not None:
                for phase, seconds in level_statistics.phase_seconds().items():
                    self._tracer.record("stage2.phase." + phase, seconds)
        stage_two = time.perf_counter() - stage_two_start

        measured = time.perf_counter() - started
        overhead = max(0.0, measured - stage_one - stage_two)
        stats = QueryStats(
            request_key=key,
            stage_one_seconds=stage_one,
            stage_two_seconds=stage_two,
            overhead_seconds=overhead,
            total_seconds=stage_one + stage_two + overhead,
            served_from_store=from_store,
            result_cache_hit=False,
            num_minimal_patterns=len(minimal),
            num_patterns=len(patterns),
            level_statistics=(
                level_statistics.to_dict() if level_statistics is not None else None
            ),
        )
        self._publish_stage_metrics(spec.constraint_id, stats)
        self._result_cache[key] = list(patterns)
        while len(self._result_cache) > self._result_cache_size:
            self._result_cache.popitem(last=False)
        return patterns, stats

    def _publish_stage_metrics(self, constraint_id: str, stats: QueryStats) -> None:
        """Publish one cold query's stage latencies and LevelGrow counters."""
        labels = {"constraint": constraint_id}
        self._metrics.histogram(
            "repro_stage_one_seconds", "Stage-1 (store or mine) latency", labels=labels
        ).observe(stats.stage_one_seconds)
        self._metrics.histogram(
            "repro_stage_two_seconds", "Stage-2 (growth) latency", labels=labels
        ).observe(stats.stage_two_seconds)
        level = stats.level_statistics
        if not level:
            return
        for field, metric_name, help_text in (
            (
                "canonical_incremental_hits",
                "repro_canonical_incremental_hits_total",
                "Canonical keys derived incrementally instead of recomputed",
            ),
            (
                "invariant_cache_hits",
                "repro_invariant_cache_hits_total",
                "Diameter-invariant descriptor cache hits",
            ),
            (
                "probes_batched",
                "repro_probes_batched_total",
                "Existence probes answered by the batched prefilter",
            ),
            (
                "patterns_emitted",
                "repro_patterns_emitted_total",
                "Patterns emitted by Stage-2 growth",
            ),
        ):
            value = level.get(field, 0)
            if value:
                self._metrics.counter(metric_name, help_text, labels=labels).inc(value)

    def run_batch(self, queries: Sequence[Query]) -> List[Result]:
        """Serve a batch in order; duplicate queries hit the result cache.

        Like :meth:`MiningService.serve_batch <repro.service.mining.MiningService.serve_batch>`,
        the whole batch becomes one ``service.batch`` span with each query's
        span tree nested under it, and the batch count and latency land in
        the metrics registry.
        """
        started = time.perf_counter()
        with self._tracer.span("service.batch", size=len(queries)):
            results = [self.run(query) for query in queries]
        self._metrics.counter(
            "repro_batches_total", "Request batches served by the mining service"
        ).inc()
        self._metrics.histogram(
            "repro_batch_seconds", "End-to-end batch latency (mining service)"
        ).observe(time.perf_counter() - started)
        return results

    def query_corpus(self, **filters):
        """Query the pattern corpus this engine serves from.

        Delegates to :meth:`PatternStore.query
        <repro.index.store.PatternStore.query>` on the engine's store
        (indexed on the SQLite backend, a scan elsewhere), defaulting the
        ``fingerprint`` filter to this engine's dataset so callers see the
        corpus for *their* data unless they explicitly ask for everything
        (``fingerprint=None`` queries across datasets).  Returns
        :class:`repro.index.PatternMatch` objects ordered deterministically.
        """
        if "fingerprint" not in filters:
            filters["fingerprint"] = self._fingerprint
        elif filters["fingerprint"] is None:
            del filters["fingerprint"]
        with self._tracer.span("engine.query_corpus"):
            return self._store.query(**filters)

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, delta: Union[GraphDelta, Sequence[EdgeDelta]]
    ) -> RepairReport:
        """Edit the data and repair (not rebuild) the Stage-1 index.

        Entries of path-indexed constraints are repaired through
        :class:`IndexMaintainer`; stale entries of every other registered
        constraint are invalidated, since their Stage-1 semantics have no
        incremental repair rule yet.  Even if the repair fails part-way, the
        ``finally`` block re-keys the engine to whatever the graphs now
        contain and drops the result/context caches, so stale answers are
        never served.
        """
        specs = constraint_specs()
        repairable = [spec.constraint_id for spec in specs if spec.path_indexed]
        invalidatable = {spec.constraint_id for spec in specs if not spec.path_indexed}
        maintainer = IndexMaintainer(self._store, repairable, metrics=self._metrics)
        try:
            with self._tracer.span("engine.apply_delta"):
                report = maintainer.apply_delta(self._graphs, delta)
            for key in list(self._store.keys()):
                if (
                    key.fingerprint == report.old_fingerprint
                    and key.fingerprint != report.new_fingerprint
                    and key.constraint_id in invalidatable
                ):
                    self._store.delete(key)
                    report.entries_seen += 1
                    report.entries_invalidated += 1
            return report
        finally:
            self._fingerprint = dataset_fingerprint(self._graphs)
            self._result_cache.clear()
            self._contexts.clear()
            # Only graphs the batch names can have been mutated (even on
            # a part-way failure), so frozen views of every other
            # transaction stay valid and keep serving.
            for index in touched_graph_indices(delta):
                self._frozen_views.pop(index, None)

    def adopt_frozen_views(
        self,
        source: "MiningEngine",
        delta: Union[GraphDelta, Sequence[EdgeDelta]],
    ) -> int:
        """Reuse ``source``'s frozen CSR views for graphs ``delta`` skipped.

        The serving tier builds each snapshot generation over *deep copies*
        of the previous generation's graphs, so a fresh engine starts with
        an empty frozen-view pool and would re-freeze the entire database
        even when the delta edited a single transaction.  A copy the delta
        does not name is content-identical to its original, and frozen
        views are immutable — so the previous generation's views are valid
        for this engine verbatim.  This method copies them across (along
        with the source's label palette, which the adopted views' label
        codes point into; palettes are append-only, so sharing one across
        generations never reassigns a code) and returns how many views
        were adopted.

        Must be called before this engine freezes anything itself: if the
        pool is already populated or a context exists, the call is a no-op
        returning 0 — mixing views interned against different palettes
        would break database-wide label-code stability.

        Examples
        --------
        >>> from repro.graph.labeled_graph import build_graph
        >>> graphs = [build_graph({0: "a", 1: "b"}, [(0, 1)]),
        ...           build_graph({0: "c", 1: "d"}, [(0, 1)])]
        >>> old = MiningEngine(graphs)
        >>> _ = old._context(1, SupportMeasure.TRANSACTIONS).frozen_graph(0)
        >>> _ = old._context(1, SupportMeasure.TRANSACTIONS).frozen_graph(1)
        >>> new = MiningEngine([graph.copy() for graph in graphs])
        >>> delta = GraphDelta().remove_edge(0, 1, graph_index=1)
        >>> new.adopt_frozen_views(old, delta)  # graph 1 edited, graph 0 not
        1
        >>> new._frozen_views[0] is old._frozen_views[0]
        True
        """
        if self._contexts or self._frozen_views:
            return 0
        touched = touched_graph_indices(delta)
        adopted = 0
        for index, view in source._frozen_views.items():
            if index not in touched and 0 <= index < len(self._graphs):
                self._frozen_views[index] = view
                adopted += 1
        if adopted:
            self._frozen_palette = source._frozen_palette
        return adopted
