"""Pattern objects: mined results and in-flight growth states.

Two classes live here:

* :class:`SkinnyPattern` — an element of the mining *result*: the pattern
  graph, its canonical diameter, its embeddings and support.  This is what
  :class:`repro.core.skinnymine.SkinnyMine` returns and what the benchmark
  harness consumes.
* :class:`GrowthState` — the state LevelGrow carries while growing a pattern:
  the pattern graph, the (fixed) canonical diameter occupying pattern
  vertices ``0 .. l``, the per-vertex level and the two distance indices
  ``D_H`` / ``D_T`` of Section 3.4, plus the live embedding list.

Pattern-vertex numbering convention: the canonical diameter is always the
path ``0 - 1 - ... - l`` with head ``v_H = 0`` and tail ``v_T = l``; twig
vertices are numbered ``l + 1, l + 2, ...`` in creation order.  Keeping the
diameter on the smallest ids makes the paper's Definition-3 tie-break (prefer
smaller physical ids) favour the stored diameter automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.orders import canonical_label_orientation
from repro.graph.canonical import (
    TreeEncodings,
    UnicyclicEncodings,
    canonical_key,
    tree_encodings,
)
from repro.graph.embeddings import Embedding, EmbeddingTable, LazyEmbeddings
from repro.graph.labeled_graph import LabeledGraph, VertexId


@dataclass(frozen=True)
class PathPattern:
    """A frequent simple path produced by DiamMine (a future canonical diameter).

    ``labels`` is the canonical orientation of the path's label sequence
    (Definition 2/3); ``embeddings`` are (graph index, data-vertex tuple)
    pairs oriented to match ``labels``.
    """

    labels: Tuple[str, ...]
    embeddings: Tuple[Tuple[int, Tuple[VertexId, ...]], ...]
    support: int

    @property
    def length(self) -> int:
        """Number of edges of the path."""
        return len(self.labels) - 1

    def to_graph(self) -> LabeledGraph:
        """Materialise the path as a pattern graph on vertices ``0 .. length``."""
        graph = LabeledGraph(name=f"diameter-{self.length}")
        for position, label in enumerate(self.labels):
            graph.add_vertex(position, label)
            if position > 0:
                graph.add_edge(position - 1, position)
        return graph

    def to_embedding_objects(self) -> List[Embedding]:
        """Embeddings as :class:`repro.graph.embeddings.Embedding` objects."""
        result = []
        for graph_index, vertices in self.embeddings:
            mapping = {position: vertex for position, vertex in enumerate(vertices)}
            result.append(Embedding.from_dict(mapping, graph_index))
        return result


@dataclass
class SkinnyPattern:
    """One mined l-long δ-skinny pattern."""

    graph: LabeledGraph
    diameter: List[VertexId]
    #: Legacy wire format: a sequence of :class:`Embedding` objects.  The
    #: growth engine supplies a lazily materialised
    #: :class:`repro.graph.embeddings.LazyEmbeddings` view; plain lists are
    #: equally valid (the store codec and tests build them directly).
    embeddings: Sequence[Embedding]
    support: int

    @property
    def diameter_length(self) -> int:
        return len(self.diameter) - 1

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices()

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges()

    @property
    def skinniness(self) -> int:
        """Maximum vertex level of the pattern (lazy, recomputed from the graph)."""
        from repro.core.diameter import vertex_levels

        levels = vertex_levels(self.graph, self.diameter)
        return max(levels.values())

    def canonical_form(self) -> Tuple:
        """A hashable key equal for isomorphic patterns."""
        return canonical_key(self.graph)

    def diameter_labels(self) -> Tuple[str, ...]:
        return tuple(str(self.graph.label_of(vertex)) for vertex in self.diameter)

    def __repr__(self) -> str:
        return (
            f"<SkinnyPattern |V|={self.num_vertices} |E|={self.num_edges} "
            f"l={self.diameter_length} support={self.support}>"
        )


@dataclass
class GrowthState:
    """The in-flight state of one pattern during LevelGrow.

    Attributes
    ----------
    pattern:
        The pattern graph.  Vertices ``0 .. diameter_len`` are the canonical
        diameter; larger ids are twig vertices.
    diameter_len:
        l = |L|, which equals the pattern's diameter D(P) throughout growth
        (Loop Invariant 1).
    levels:
        ``Dist(v, L)`` for every pattern vertex.
    dist_head / dist_tail:
        The two indices ``D^u_H`` / ``D^u_T`` of Section 3.4: shortest
        distance from each pattern vertex to the head (vertex 0) and tail
        (vertex ``diameter_len``) of the diameter.
    table:
        Current embeddings of the pattern in the data, held as a columnar
        :class:`repro.graph.embeddings.EmbeddingTable`; the legacy
        ``embeddings`` view materialises :class:`Embedding` objects on
        demand (results and the store codec keep that wire format).
    support:
        Support of the pattern under the context's measure.
    """

    pattern: LabeledGraph
    diameter_len: int
    levels: Dict[VertexId, int]
    dist_head: Dict[VertexId, int]
    dist_tail: Dict[VertexId, int]
    table: EmbeddingTable
    support: int
    last_extension: Optional[Tuple] = None
    # Total distance excess over D(P): 0 iff the state is reportable, > 0
    # for pending intermediates.  For never-pending states this is the
    # head/tail excess (O(1) to maintain; the paper's induction guarantees
    # head/tail distances bound the diameter along valid-only growth).  For
    # tainted states (see below) it is the eccentricity excess
    # Σ_v max(0, ecc(v) − D(P)), because once the induction is broken a
    # twig-to-twig distance can exceed D(P) while every head/tail distance
    # is fine.  Maintained by LevelGrower.
    deficiency: int = 0
    # True iff the state or any ancestor violated Constraint I (entered the
    # pending flow).  Tainted states pay the exact eccentricity-based
    # deficiency; untainted ones keep the cheap head/tail bookkeeping.
    tainted: bool = False
    # True once this state passed the emission-time Loop-Invariant check (or
    # is the bare canonical diameter, which realises L trivially).  A pendant
    # extension of a verified state changes no existing distance, so its own
    # check reduces to the pairs involving the new vertex — the growth
    # loop's incremental verification path (see LevelGrower).
    invariant_verified: bool = False
    # Carried rooted AHU encodings while the pattern is still a tree (the
    # overwhelmingly common case for grown skinny patterns): the duplicate
    # registry's canonical key is then derived from the parent's encodings in
    # O(depth) per pendant extension instead of re-canonicalising the whole
    # tree (see repro.graph.canonical.TreeEncodings).  ``None`` once a
    # cycle-closing edge lands (those patterns key by WL signature + VF2) or
    # when an incremental derivation was not possible.  Runtime-only: never
    # serialised, shared by reference across copies (immutable).
    tree_encodings: Optional[TreeEncodings] = None
    # The unicyclic counterpart, carried once a cycle-closing edge lands
    # (|E| = |V|): the single cycle is fixed for the rest of the derivation
    # chain — pendant growth never changes the 2-core, and a second closing
    # edge leaves the unicyclic tier — so the registry key is derived from
    # the parent's hanging-tree encodings in O(depth + cycle) per pendant
    # extension (see repro.graph.canonical.UnicyclicEncodings).  ``None``
    # for trees, for >=2-cycle patterns, and when an incremental derivation
    # was not possible.  Runtime-only, shared by reference (immutable).
    cycle_encodings: Optional["UnicyclicEncodings"] = None
    # For pending states: the nearest *reportable* ancestor.  Emissions
    # reached through a pending excursion are super-patterns of that
    # ancestor, so the closed/maximal child accounting must credit it (the
    # pending intermediates themselves are never reported).  None for
    # reportable states.
    origin: Optional["GrowthState"] = None
    # Growth accounting filled in by LevelGrower: how many accepted (frequent,
    # constraint-preserving, non-duplicate) extensions this state has, and how
    # many of them kept the same support.  Used for the maximal / closed
    # output filters (Algorithm 3 reports closed patterns).
    accepted_children: int = 0
    equal_support_children: int = 0

    @property
    def embeddings(self) -> List[Embedding]:
        """Legacy view: the table's rows as :class:`Embedding` objects."""
        return self.table.to_embeddings()

    @property
    def head(self) -> VertexId:
        return 0

    @property
    def tail(self) -> VertexId:
        return self.diameter_len

    @property
    def diameter_vertices(self) -> List[VertexId]:
        return list(range(self.diameter_len + 1))

    def max_level(self) -> int:
        return max(self.levels.values()) if self.levels else 0

    def next_vertex_id(self) -> VertexId:
        # Read once per candidate of this state; keyed on the vertex count so
        # in-place pattern growth (test helpers) invalidates the cache.
        order = self.pattern.num_vertices()
        cached = getattr(self, "_next_vertex_id", None)
        if cached is None or cached[0] != order:
            cached = (order, max(self.pattern.vertices()) + 1)
            self._next_vertex_id = cached
        return cached[1]

    def vertices_at_level(self, level: int) -> List[VertexId]:
        return [vertex for vertex, lvl in self.levels.items() if lvl == level]

    def diameter_label_sequence(self) -> Tuple[str, ...]:
        # Hot in the constraint checks; the diameter's labels never change
        # after construction, so the tuple is built once per state.
        cached = getattr(self, "_diameter_labels", None)
        if cached is None:
            cached = tuple(
                str(self.pattern.label_of(vertex)) for vertex in self.diameter_vertices
            )
            self._diameter_labels = cached
        return cached

    def canonical_form(self) -> Tuple:
        return canonical_key(self.pattern)

    def copy(self) -> "GrowthState":
        return GrowthState(
            pattern=self.pattern.copy(),
            diameter_len=self.diameter_len,
            levels=dict(self.levels),
            dist_head=dict(self.dist_head),
            dist_tail=dict(self.dist_tail),
            table=self.table.copy(),
            support=self.support,
            last_extension=self.last_extension,
            invariant_verified=self.invariant_verified,
            tree_encodings=self.tree_encodings,
            cycle_encodings=self.cycle_encodings,
            deficiency=self.deficiency,
            tainted=self.tainted,
            origin=self.origin,
        )

    def to_pattern(self) -> SkinnyPattern:
        """Freeze the state into a result object (legacy embedding wire format).

        The embeddings ride along as a :class:`LazyEmbeddings` view: results
        are frozen inside the timed growth loop, but their ``Embedding``
        objects are only ever read afterwards (serialisation, analysis), so
        the per-pattern materialisation is deferred to first access.  The
        graph is shared by reference for the same reason: growth never
        mutates an emitted state's pattern (every extension path copies it
        first), and result consumers only read.
        """
        return SkinnyPattern(
            graph=self.pattern,
            diameter=self.diameter_vertices,
            embeddings=LazyEmbeddings(self.table),
            support=self.support,
        )

    def __repr__(self) -> str:
        return (
            f"<GrowthState |V|={self.pattern.num_vertices()} "
            f"|E|={self.pattern.num_edges()} l={self.diameter_len} "
            f"support={self.support}>"
        )


def initial_state_from_path(path: PathPattern) -> GrowthState:
    """Build the level-0 growth state from a DiamMine path (iteration 0 of Stage II).

    The path's orientation must already be canonical: when the path's label
    sequence is not palindromic, its forward reading must be the smaller one,
    which :class:`PathPattern` guarantees by construction.

    When the label sequence *is* palindromic, every undirected occurrence is
    two distinct embeddings (the reversal maps the path onto itself), and the
    growth table must hold both rows: extensions join against table rows, so
    a twig that hangs off only one end of a data occurrence is reachable from
    only one orientation.  Dropping the mirror rows silently loses those
    joins — one of the LevelGrow completeness gaps closed in
    ``docs/CORRECTNESS.md``.
    """
    if path.labels != canonical_label_orientation(path.labels):
        raise ValueError("PathPattern labels must be in canonical orientation")
    graph = path.to_graph()
    length = path.length
    levels = {vertex: 0 for vertex in range(length + 1)}
    dist_head = {vertex: vertex for vertex in range(length + 1)}
    dist_tail = {vertex: length - vertex for vertex in range(length + 1)}
    occurrences = list(path.embeddings)
    if path.labels == tuple(reversed(path.labels)):
        seen = set(occurrences)
        for graph_index, vertices in path.embeddings:
            mirrored = (graph_index, tuple(reversed(vertices)))
            if mirrored not in seen:
                seen.add(mirrored)
                occurrences.append(mirrored)
    table = EmbeddingTable.from_path_occurrences(occurrences, length)
    support = path.support
    return GrowthState(
        pattern=graph,
        diameter_len=length,
        levels=levels,
        dist_head=dist_head,
        dist_tail=dist_tail,
        table=table,
        support=support,
        # The bare canonical diameter realises L as its own lex-min diameter
        # path (the canonical orientation is the smaller reading), so Loop
        # Invariant 1 holds by construction.
        invariant_verified=True,
        # Seed the incremental canonical-key fast path: every pendant
        # extension derives its key from these encodings in O(depth).
        tree_encodings=tree_encodings(graph),
    )
