"""Reference enumerate-and-check miner for validating SkinnyMine.

This is the "traditional mining" strawman from Figure 1/2 of the paper: grow
every connected frequent subgraph pattern breadth-first, then keep those that
satisfy the l-long δ-skinny constraint.  It is exponential and only usable on
tiny inputs, which is exactly its role here — a ground-truth oracle for the
completeness and uniqueness tests, and the baseline that the direct-mining
benchmarks beat.

The enumeration is edge-set based: patterns are grown by adding one data edge
at a time to a connected occurrence, occurrences are grouped by the pattern's
canonical code, and support is the number of distinct occurrences (or
transactions) exactly as in :class:`repro.core.database.MiningContext`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diameter import canonical_diameter, is_l_long_delta_skinny
from repro.core.patterns import SkinnyPattern
from repro.graph.canonical import canonical_key
from repro.graph.embeddings import Embedding
from repro.graph.labeled_graph import LabeledGraph, VertexId

EdgeKey = Tuple[VertexId, VertexId]
Occurrence = Tuple[int, FrozenSet[EdgeKey]]


def _edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    return (u, v) if u < v else (v, u)


def _occurrence_graph(data_graph: LabeledGraph, edges: FrozenSet[EdgeKey]) -> LabeledGraph:
    return data_graph.edge_subgraph(sorted(edges))


def _pattern_of_occurrence(
    data_graph: LabeledGraph, edges: FrozenSet[EdgeKey]
) -> Tuple[Tuple, LabeledGraph]:
    subgraph = _occurrence_graph(data_graph, edges)
    compacted, _ = subgraph.compact()
    return canonical_key(compacted), compacted


def enumerate_frequent_connected_subgraphs(
    context: MiningContext,
    max_edges: int,
    max_patterns: Optional[int] = None,
) -> List[Tuple[LabeledGraph, List[Occurrence], int]]:
    """All frequent connected subgraph patterns with at most ``max_edges`` edges.

    Returns ``(pattern graph, occurrences, support)`` triples.  Exponential —
    keep ``max_edges`` and the data tiny.
    """
    if max_edges < 1:
        raise ValueError("max_edges must be at least 1")

    # Seed with single-edge occurrences.
    current: Dict[Tuple, Dict[Occurrence, None]] = {}
    pattern_graphs: Dict[Tuple, LabeledGraph] = {}
    for graph_index in context.graph_indices():
        graph = context.graph(graph_index)
        for edge in graph.edges():
            edges = frozenset({_edge_key(edge.u, edge.v)})
            key, pattern = _pattern_of_occurrence(graph, edges)
            current.setdefault(key, {})[(graph_index, edges)] = None
            pattern_graphs.setdefault(key, pattern)

    results: List[Tuple[LabeledGraph, List[Occurrence], int]] = []
    seen_patterns: Set[Tuple] = set()

    def mni_of(pattern: LabeledGraph) -> int:
        # Position-wise minimum image count over *all* embeddings of the
        # pattern (including automorphic re-mappings), the textbook MNI.
        from repro.graph.isomorphism import find_subgraph_embeddings

        images: Dict[VertexId, Set[Tuple[int, VertexId]]] = {
            vertex: set() for vertex in pattern.vertices()
        }
        for graph_index in context.graph_indices():
            graph = context.graph(graph_index)
            for mapping in find_subgraph_embeddings(
                pattern, graph, distinct_images=False
            ):
                for pattern_vertex, data_vertex in mapping.items():
                    images[pattern_vertex].add((graph_index, data_vertex))
        return min((len(image) for image in images.values()), default=0)

    def support_of(key: Tuple, occurrences: Sequence[Occurrence]) -> int:
        if context.support_measure is SupportMeasure.TRANSACTIONS:
            return len({index for index, _ in occurrences})
        if context.support_measure is SupportMeasure.MNI:
            return mni_of(pattern_graphs[key])
        images = {
            (index, frozenset(v for edge in edges for v in edge))
            for index, edges in occurrences
        }
        return len(images)

    size = 1
    while current and size <= max_edges:
        next_level: Dict[Tuple, Dict[Occurrence, None]] = {}
        for key, occurrence_map in current.items():
            occurrences = list(occurrence_map)
            support = support_of(key, occurrences)
            frequent = context.is_frequent(support)
            # Under an anti-monotone measure an infrequent pattern has no
            # frequent super-pattern, so pruning it is lossless.  Embedding
            # count is not anti-monotone (two embeddings of a super-pattern
            # can share one image of a sub-pattern), so there the oracle
            # keeps extending every pattern that occurs at all and only the
            # *reporting* is thresholded — exhaustive, as ground truth must be.
            if not frequent and context.support_measure.anti_monotone:
                continue
            if frequent and key not in seen_patterns:
                seen_patterns.add(key)
                results.append((pattern_graphs[key], occurrences, support))
                if max_patterns is not None and len(results) >= max_patterns:
                    return results
            if size == max_edges:
                continue
            for graph_index, edges in occurrences:
                graph = context.graph(graph_index)
                vertices = {v for edge in edges for v in edge}
                for vertex in vertices:
                    for neighbor in graph.neighbors(vertex):
                        new_edge = _edge_key(vertex, neighbor)
                        if new_edge in edges:
                            continue
                        extended = edges | {new_edge}
                        new_key, new_pattern = _pattern_of_occurrence(graph, extended)
                        next_level.setdefault(new_key, {})[
                            (graph_index, extended)
                        ] = None
                        pattern_graphs.setdefault(new_key, new_pattern)
        current = next_level
        size += 1
    return results


def enumerate_and_check_spm(
    graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
    length: int,
    delta: int,
    min_support: int,
    max_edges: Optional[int] = None,
    support_measure: Optional[SupportMeasure] = None,
) -> List[SkinnyPattern]:
    """Ground-truth (l, δ)-SPM solver by exhaustive enumerate-and-check.

    ``max_edges`` defaults to a bound sufficient for any l-long δ-skinny
    pattern present in the data: patterns are connected, so at most
    ``|V(data)| - 1 + cycles`` edges — we simply use the total number of data
    edges, which is safe but means the caller should keep the data tiny.
    """
    context = MiningContext(graphs, min_support, support_measure)
    if max_edges is None:
        max_edges = max(graph.num_edges() for graph in context.graphs)
    frequent = enumerate_frequent_connected_subgraphs(context, max_edges)
    results: List[SkinnyPattern] = []
    for pattern, occurrences, support in frequent:
        if not is_l_long_delta_skinny(pattern, length, delta):
            continue
        embeddings = [
            Embedding.from_dict(
                {position: vertex for position, vertex in enumerate(sorted(
                    {v for edge in edges for v in edge}
                ))},
                graph_index,
            )
            for graph_index, edges in occurrences
        ]
        results.append(
            SkinnyPattern(
                graph=pattern,
                diameter=canonical_diameter(pattern),
                embeddings=embeddings,
                support=support,
            )
        )
    return results
