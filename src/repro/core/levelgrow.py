"""LevelGrow — Stage II of SkinnyMine: constraint-preserving pattern growth.

Section 3.1 / Algorithm 3 of the paper.  Each canonical diameter mined by
DiamMine is grown level by level: iteration ``i`` adds only edges that either
attach a *new* i-level vertex to an (i-1)-level vertex, connect an existing
(i-1)-level vertex to an existing i-level vertex, or connect two existing
i-level vertices.  Every extension must preserve the canonical diameter
(Loop Invariant 1), which is checked locally through the
``D_H`` / ``D_T`` indices (:mod:`repro.core.constraints`), and must stay
frequent in the data.

Embedding maintenance is *incremental*: a pattern's occurrences live in a
columnar :class:`repro.graph.embeddings.EmbeddingTable`, and one adjacency
scan over that table both proposes the admissible extensions **and** records
each extension's join — the ``(row, data vertex)`` pairs (new twig vertex) or
surviving row indices (edge between mapped vertices) that realise it.
Applying an extension is then a pure join against the parent table; no
embedding is ever re-matched, no per-embedding dict or image set is built.

Duplicate elimination.  The canonical diameter already partitions the result
space into disjoint clusters (patterns sharing a diameter), so duplicates can
only arise *within* a cluster, from reaching the same pattern through
different edge-addition orders.  The paper orders extension edges and anchors
each pattern at its last added edge (gSpan style); this implementation keeps
the canonical ordering of candidate extensions but guarantees uniqueness with
an explicit per-cluster registry keyed by exact canonical forms, which is
simpler to reason about and immune to corner cases in the anchor ordering
when new twig vertices are created dynamically.  The observable behaviour
(each pattern reported exactly once, only cluster-local candidates examined)
matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.constraints import (
    admissible_existing_edge,
    distances_after_existing_edge,
    new_vertex_distances,
    permanently_admissible_new_vertex,
)
from repro.core.database import MiningContext
from repro.core.patterns import GrowthState
from repro.graph.canonical import tree_canonical_key, wl_signature
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, VertexId


class PatternRegistry:
    """Exact duplicate detection tuned for the growth loop.

    Grown skinny patterns are overwhelmingly *trees* (the canonical diameter
    plus pendant twigs), and free labeled trees have an exact near-linear
    canonical form — so the registry keys trees by
    :func:`repro.graph.canonical.tree_canonical_key` directly, one set
    membership test per candidate, memoised across all growth levels.  Only
    patterns with cycles (edge-closing extensions) fall back to bucketing by
    a Weisfeiler–Lehman signature with an exact labeled-isomorphism test on
    collision; the signature records the whole refinement trajectory, which
    keeps those buckets near-singleton.  (The minimum-DFS-code canonical
    form is *not* used here: its branch-and-bound is exponential on exactly
    the twig-heavy patterns the growth loop mass-produces.)  Isomorphic
    patterns are always detected — tree keys and the VF2 confirmation are
    exact, the signature is isomorphism-invariant — so the registry never
    reports a false duplicate nor misses a true one.
    """

    def __init__(self) -> None:
        self._tree_keys: Set[Tuple] = set()
        self._buckets: Dict[Tuple, List[LabeledGraph]] = {}
        self._count = 0

    def add_if_new(self, pattern: LabeledGraph) -> bool:
        """Register ``pattern``; return True if it was not seen before."""
        if pattern.num_edges() == pattern.num_vertices() - 1:
            try:
                key = tree_canonical_key(pattern)
            except ValueError:
                key = None  # right edge count but disconnected: not a tree
            if key is not None:
                if key in self._tree_keys:
                    return False
                self._tree_keys.add(key)
                self._count += 1
                return True
        signature = wl_signature(pattern)
        bucket = self._buckets.setdefault(signature, [])
        for member in bucket:
            if are_isomorphic(pattern, member):
                return False
        bucket.append(pattern)
        self._count += 1
        return True

    def __len__(self) -> int:
        return self._count


@dataclass(frozen=True)
class NewVertexExtension:
    """Attach a new vertex with ``label`` to pattern vertex ``parent``."""

    parent: VertexId
    label: str

    def sort_key(self) -> Tuple:
        return (0, self.parent, self.label)


@dataclass(frozen=True)
class ExistingEdgeExtension:
    """Add the pattern edge (u, v) between two existing vertices."""

    u: VertexId
    v: VertexId

    def sort_key(self) -> Tuple:
        return (1, min(self.u, self.v), max(self.u, self.v))


Extension = object  # union of the two dataclasses above

#: The join recorded for one candidate while scanning the embedding table:
#: ``(row index, data vertex)`` pairs for a new-vertex extension, or the
#: sorted surviving row indices for an edge between mapped vertices.
ExtensionJoin = Union[List[Tuple[int, VertexId]], List[int]]


@dataclass
class LevelGrowStatistics:
    """Counters exposed for the scalability experiments (Figures 16–18).

    ``candidates_pending`` counts candidates that violated Constraint I in a
    repairable way and entered the pending worklist (explored, not
    reported); they are *also* counted under
    ``candidates_rejected_constraints`` because, unless a later edge repairs
    them, they contribute nothing to the output.
    """

    candidates_generated: int = 0
    candidates_rejected_constraints: int = 0
    candidates_rejected_support: int = 0
    candidates_rejected_duplicate: int = 0
    candidates_pending: int = 0
    patterns_emitted: int = 0

    def merge(self, other: "LevelGrowStatistics") -> None:
        self.candidates_generated += other.candidates_generated
        self.candidates_rejected_constraints += other.candidates_rejected_constraints
        self.candidates_rejected_support += other.candidates_rejected_support
        self.candidates_rejected_duplicate += other.candidates_rejected_duplicate
        self.candidates_pending += other.candidates_pending
        self.patterns_emitted += other.patterns_emitted


def _eccentricities(pattern: LabeledGraph) -> Dict[VertexId, int]:
    """Per-vertex eccentricity by BFS from every vertex (patterns are small)."""
    from collections import deque

    result: Dict[VertexId, int] = {}
    for source in pattern.vertices():
        distances = {source: 0}
        queue = deque([source])
        farthest = 0
        while queue:
            current = queue.popleft()
            for neighbor in pattern.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    farthest = distances[neighbor]
                    queue.append(neighbor)
        result[source] = farthest
    return result


def _deficient_vertices(state: GrowthState) -> Set[VertexId]:
    """Vertices keeping the state from being reportable.

    Untainted states only ever violate Constraint I at head/tail distances
    (the paper's induction); tainted states are judged by full eccentricity,
    since a repaired excursion can leave a twig-to-twig distance above D(P)
    with every head/tail distance in bounds.
    """
    limit = state.diameter_len
    if not state.tainted:
        return {
            vertex
            for vertex in state.levels
            if state.dist_head[vertex] > limit or state.dist_tail[vertex] > limit
        }
    return {
        vertex
        for vertex, eccentricity in _eccentricities(state.pattern).items()
        if eccentricity > limit
    }


def _total_deficiency(state: GrowthState) -> int:
    """Total distance excess over D(P) — 0 iff the state is reportable."""
    limit = state.diameter_len
    if not state.tainted:
        return sum(
            max(0, state.dist_head[vertex] - limit)
            + max(0, state.dist_tail[vertex] - limit)
            for vertex in state.levels
        )
    return sum(
        max(0, eccentricity - limit)
        for eccentricity in _eccentricities(state.pattern).values()
    )


@dataclass
class LevelGrowth:
    """What one ``grow_level`` pass produced.

    ``emitted`` are the reportable results: frequent, novel, and satisfying
    the full constraint.  ``pending`` are frequent intermediates that
    violate only Constraint I (a vertex temporarily further than D(P) from
    the head or tail); they must not be reported but must stay on the
    caller's frontier — an edge of a later growth level can still repair
    them (that is how 4-cycles and other edge-closed patterns, whose every
    one-edge-short sub-pattern violates the constraint, are reached).
    """

    emitted: List[GrowthState]
    pending: List[GrowthState]


class LevelGrower:
    """Grows patterns one level at a time (Algorithm 3).

    One ``LevelGrower`` is created per canonical-diameter cluster; it owns the
    cluster's duplicate registry so the same pattern is never emitted twice
    even across level iterations.
    """

    def __init__(
        self,
        context: MiningContext,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = context
        self._max_patterns = max_patterns
        self._registry = PatternRegistry()
        self._pending_registry = PatternRegistry()
        # (graph_index, diameter-image tuple) -> data distance to the nearest
        # diameter image, for data vertices within the growth horizon.  The
        # diameter images of a row never change within a cluster, so this is
        # computed once per distinct root row (see _pending_viable).
        self._diameter_ball_cache: Dict[Tuple, Dict[VertexId, int]] = {}
        # Memoised pendant-probe verdicts (see _pendant_probe_viable).
        self._probe_cache: Dict[Tuple, bool] = {}
        self.statistics = LevelGrowStatistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def register(self, state: GrowthState) -> None:
        """Record a pattern (typically the bare diameter) in the duplicate registry."""
        self._registry.add_if_new(state.pattern)

    def grow_level(self, state: GrowthState, level: int) -> List[GrowthState]:
        """The reportable patterns of :meth:`grow_level_full` (compatibility view).

        Callers that drive a multi-level growth loop should use
        :meth:`grow_level_full` and keep the pending states on their
        frontier; this wrapper discards them.
        """
        return self.grow_level_full(state, level).emitted

    def grow_level_full(
        self, state: GrowthState, level: int, max_level: Optional[int] = None
    ) -> LevelGrowth:
        """All frequent patterns reachable from ``state`` by adding one or
        more edges of iteration ``level``, split into reportable results and
        constraint-pending intermediates.

        Mirrors Algorithm 3 with one completeness repair: a worklist of
        patterns is repeatedly extended by admissible edges until no new
        pattern appears, but candidates that violate only Constraint I
        (repairable — a later edge can shrink the offending distances) stay
        on the worklist as *pending* instead of being cut, provided every
        over-distance vertex still has a conceivable repair
        (:meth:`_pending_viable`).  Only states satisfying the full
        constraint are emitted; per-cluster duplicate registries guarantee
        each pattern (valid or pending) is explored once.  Without this, any
        pattern whose every one-edge-short sub-pattern has a too-long
        diameter — the frequent 4-cycle of the ROADMAP repro, for instance —
        is unreachable.

        ``max_level`` is the growth horizon δ when the caller knows it;
        pending viability uses it to rule out repairs that would need
        vertices of a level that will never be grown (``None`` = no horizon,
        fully conservative).
        """
        if level < 1:
            raise ValueError("growth levels start at 1")
        results: List[GrowthState] = []
        pending: List[GrowthState] = []
        if state.deficiency and not self._pending_viable(state, level, max_level):
            # A pending state carried over from an earlier level whose
            # remaining repairs are no longer proposable at this level.
            return LevelGrowth(results, pending)
        def deficient_of(grow_state: GrowthState) -> Set[VertexId]:
            """Memoised on the state object — ``id()``-keyed caches are unsafe
            here (ids are reused once rejected candidates are collected).
            """
            if not grow_state.deficiency:
                return set()
            memo = getattr(grow_state, "_deficient_memo", None)
            if memo is None:
                memo = _deficient_vertices(grow_state)
                grow_state._deficient_memo = memo
            return memo

        worklist: List[GrowthState] = [state]
        while worklist:
            current = worklist.pop()
            current_deficient = deficient_of(current)
            for extension, join in self._candidate_extensions(current, level):
                if current_deficient and not self._relevant_while_pending(
                    current, current_deficient, extension
                ):
                    # From a pending state only deficiency-relevant structure
                    # may grow; everything else commutes past the repair (it
                    # can be added later, from the repaired valid state), so
                    # skipping it here loses nothing and stops the pending
                    # space from multiplying with every unrelated extension.
                    continue
                self.statistics.candidates_generated += 1
                if isinstance(extension, NewVertexExtension):
                    dist_head, dist_tail = new_vertex_distances(
                        current, extension.parent
                    )
                    limit = current.diameter_len
                    if (
                        dist_head > limit or dist_tail > limit
                    ) and not self._pendant_probe_viable(
                        current, extension.parent, join, level, max_level
                    ):
                        # Constraint-I violation with no conceivable repair:
                        # reject before paying for the embedding join.
                        self.statistics.candidates_rejected_constraints += 1
                        continue
                extended = self._apply_extension(current, extension, join, level)
                if extended is None:
                    continue
                if (
                    current_deficient
                    and isinstance(extension, ExistingEdgeExtension)
                    and extension.u not in current_deficient
                    and extension.v not in current_deficient
                    and extended.deficiency >= current.deficiency
                ):
                    # Edge between valid vertices that did not advance any
                    # repair: defer it to the valid state (commutes).
                    continue
                if extended.deficiency:
                    # Repairable violation: explore (never report) while a
                    # repair is still conceivable; drop otherwise.
                    self.statistics.candidates_rejected_constraints += 1
                    if not self._pending_viable(
                        extended, level, max_level,
                        deficient_set=deficient_of(extended),
                    ):
                        continue
                    self.statistics.candidates_pending += 1
                    # Pending states remember their nearest reportable
                    # ancestor: patterns emitted out of the excursion are
                    # that ancestor's super-patterns.
                    extended.origin = current.origin if current.deficiency else current
                    if self._pending_registry.add_if_new(extended.pattern):
                        pending.append(extended)
                        worklist.append(extended)
                    continue
                # Credit the child to the state it will be reported against:
                # the pending intermediates between them are never emitted,
                # so the closed/maximal accounting must reach through to the
                # reportable ancestor.
                credited = (
                    current if not current.deficiency else (current.origin or current)
                )

                def credit():
                    credited.accepted_children += 1
                    if extended.support >= credited.support:
                        credited.equal_support_children += 1

                if not self._registry.add_if_new(extended.pattern):
                    self.statistics.candidates_rejected_duplicate += 1
                    credit()
                    continue
                if not self._holds_loop_invariant(extended):
                    # The pattern's true canonical diameter is some other
                    # (smaller-label) length-D(P) path: the pattern belongs
                    # to — and, when it satisfies the constraint at all, is
                    # emitted by — that diameter's own cluster.  The
                    # per-edge Constraint III checks cannot see this case
                    # when the competing path connects two twigs rather
                    # than the head and tail.  Checked after the registry so
                    # each distinct pattern pays for it once (re-derivations
                    # fall out at the duplicate gate above); no child credit
                    # — the pattern is not reportable from this cluster.
                    self.statistics.candidates_rejected_constraints += 1
                    continue
                credit()
                self.statistics.patterns_emitted += 1
                results.append(extended)
                worklist.append(extended)
                if self._max_patterns is not None and len(self._registry) > self._max_patterns:
                    return LevelGrowth(results, pending)
        return LevelGrowth(results, pending)

    @staticmethod
    def _holds_loop_invariant(state: GrowthState) -> bool:
        """Loop Invariant 1 verified from scratch before every emission.

        The per-edge Constraints I–III are *local*: they bound distances to
        the head and tail and inspect head–tail paths through the new edge.
        They miss two global cases — a twig-to-twig distance exceeding D(P)
        after a pending repair, and a twig-to-twig *diameter path* with a
        label sequence smaller than L (possible even along never-pending
        growth; found by the randomized cross-check suite).  Both fall out
        of one exact check on the candidate result: the pattern's diameter
        must equal D(P), and no diameter-realising shortest path may carry a
        label sequence lexicographically below L's (ties break toward L by
        construction — it occupies the smallest vertex ids).  Patterns
        failing it either violate the constraint outright or belong to
        another cluster, which emits them itself.

        Implementation: all-pairs BFS (patterns are small), then for every
        vertex pair at distance D(P) the lexicographically smallest label
        sequence over its shortest paths, computed greedily layer by layer —
        O(D·deg) per pair instead of enumerating every path.
        """
        from collections import deque

        pattern = state.pattern
        limit = state.diameter_len
        vertices = list(pattern.vertices())
        label_of = pattern.label_of
        distances: Dict[VertexId, Dict[VertexId, int]] = {}
        for source in vertices:
            reached = {source: 0}
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in pattern.neighbors(current):
                    if neighbor not in reached:
                        reached[neighbor] = reached[current] + 1
                        queue.append(neighbor)
            if max(reached.values()) > limit:
                return False  # the diameter outgrew D(P)
            distances[source] = reached

        diameter_labels = state.diameter_label_sequence()

        def direction_beats(source: VertexId, target: VertexId) -> bool:
            """True iff the lex-min label sequence of a shortest source→target
            path is strictly smaller than L's — compared layer by layer with
            early exit, so most pairs resolve within a step or two.
            """
            first = str(label_of(source))
            if first > diameter_labels[0]:
                return False
            if first < diameter_labels[0]:
                # A strictly smaller prefix decides the comparison; a full
                # shortest path always completes from here.
                return True
            to_target = distances[target]
            frontier = {source}
            for position in range(1, limit + 1):
                remaining = limit - position
                step = {
                    neighbor
                    for vertex in frontier
                    for neighbor in pattern.neighbors(vertex)
                    if to_target.get(neighbor, -1) == remaining
                }
                best = min(str(label_of(vertex)) for vertex in step)
                expected = diameter_labels[position]
                if best > expected:
                    return False
                if best < expected:
                    return True
                frontier = {v for v in step if str(label_of(v)) == best}
            return False  # equal to L: the id tie-break keeps L canonical

        for index, u in enumerate(vertices):
            row = distances[u]
            for v in vertices[index + 1:]:
                if row[v] != limit:
                    continue
                # A beating sequence must start at a label <= L's first.
                if min(str(label_of(u)), str(label_of(v))) > diameter_labels[0]:
                    continue
                if direction_beats(u, v) or direction_beats(v, u):
                    return False
        return True

    @staticmethod
    def _relevant_while_pending(
        state: GrowthState, deficient: Set[VertexId], extension: "Extension"
    ) -> bool:
        """Pre-application filter for extensions of a pending state.

        A new vertex matters only if it hangs off a deficient vertex or ends
        up deficient itself (a potential repair partner — a pendant can never
        *reduce* anyone's distance); its pendency is decided by its own
        distances, computable without applying.  An existing edge matters if
        it touches a deficient vertex; edges between valid vertices get a
        second, post-application chance in the caller (they can still repair
        transitively by shrinking a neighbour's distance).
        """
        if isinstance(extension, NewVertexExtension):
            if extension.parent in deficient:
                return True
            dist_head, dist_tail = new_vertex_distances(state, extension.parent)
            limit = state.diameter_len
            return dist_head > limit or dist_tail > limit
        return True

    # ------------------------------------------------------------------ #
    # pending viability
    # ------------------------------------------------------------------ #
    #: Visiting more data vertices than this during one viability BFS makes
    #: the check give up and answer True (it must stay conservative).
    _VIABILITY_BFS_CAP = 512

    def _pending_viable(
        self,
        state: GrowthState,
        level: int,
        max_level: Optional[int],
        deficient_set: Optional[Set[VertexId]] = None,
    ) -> bool:
        """Whether every over-distance vertex of a pending state can still be repaired.

        The check is conservative (it never rules out a genuinely repairable
        state) but prunes the combinatorial noise that would otherwise make
        relaxed growth explode: a pendant hanging off the head with nothing
        in the data to close a cycle through it can never come back within
        D(P) of the tail, so every pattern containing it is dead weight.

        A deficient vertex ``d`` is judged per violated distance (head/tail)
        by a bounded BFS in the *data* graph, one embedding row at a time:
        starting from ``d``'s image, walk through unmapped data vertices
        (the images of potential future repair-partner vertices) until a
        mapped vertex ``y`` is reached.  Walking ``k`` unmapped vertices and
        landing on ``y`` models the repair path ``d – w₁ – … – w_k – y``, so
        the violated distance could become ``eff(y) + k + 1``, where
        ``eff(y)`` is ``y``'s current distance — or, when ``y`` is itself
        deficient, its level (an optimistic but sound lower bound, since
        mutual repairs like the two arms of an 8-cycle bottom out at their
        levels).  The state is viable for ``d`` iff some row yields
        ``eff(y) + k + 1 ≤ D(P)`` under the side conditions that the repair
        edges are still proposable: a direct partner (``k = 0``) needs
        ``|level(y) − level(d)| ≤ 1`` and ``max(level(y), level(d)) ==
        level`` (that edge class's iteration is now), and any future partner
        (``k ≥ 1``) needs ``level(d) + 1 ≥ level`` and a level budget below
        the growth horizon.  Deficient vertices with a repair-marked
        deficient pattern-neighbour are marked transitively (distance
        relaxation propagates along existing edges).  The BFS visits at most
        ``_VIABILITY_BFS_CAP`` vertices per row; on overflow it answers True.
        """
        limit = state.diameter_len
        levels = state.levels
        if deficient_set is None:
            deficient_set = _deficient_vertices(state)
        if not deficient_set:
            return True
        table = state.table
        pattern = state.pattern
        horizon = max_level if max_level is not None else level + limit

        def effective(dist_map: Dict[VertexId, int], y: VertexId) -> int:
            if y in deficient_set:
                return min(dist_map[y], levels[y])
            return dist_map[y]

        def diameter_ball(graph_index: int, row: Tuple[VertexId, ...]) -> Dict[VertexId, int]:
            return self._diameter_ball(graph_index, row, limit, horizon)

        def row_repairable(d: VertexId, dist_map: Dict[VertexId, int]) -> bool:
            position = table.position_of(d)
            future_ok = levels[d] + 1 >= level and min(levels[d] + 1, horizon) >= level

            def depth0_accept(y: VertexId) -> bool:
                return (
                    not pattern.has_edge(d, y)
                    and abs(levels[y] - levels[d]) <= 1
                    and max(levels[y], levels[d]) == level
                )

            for graph_index, row in zip(table.graph_ids, table.rows):
                if self._repair_bfs(
                    graph_index=graph_index,
                    row=row,
                    columns=table.columns,
                    start=row[position],
                    exclude=d,
                    limit=limit,
                    ball=diameter_ball(graph_index, row),
                    horizon=horizon,
                    future_ok=future_ok,
                    depth0_accept=depth0_accept,
                    target_value=lambda y: effective(dist_map, y),
                ):
                    return True
            return False

        def directly_repairable(d: VertexId) -> bool:
            if state.dist_head[d] > limit and not row_repairable(d, state.dist_head):
                return False
            if state.dist_tail[d] > limit and not row_repairable(d, state.dist_tail):
                return False
            return True

        marked = {d for d in deficient_set if directly_repairable(d)}
        changed = True
        while changed:
            changed = False
            for d in deficient_set:
                if d in marked:
                    continue
                if any(
                    neighbor in marked
                    for neighbor in pattern.neighbors(d)
                    if neighbor in deficient_set
                ):
                    marked.add(d)
                    changed = True
        return len(marked) == len(deficient_set)

    def _pendant_probe_viable(
        self,
        state: GrowthState,
        parent: VertexId,
        join_pairs: Sequence[Tuple[int, VertexId]],
        level: int,
        max_level: Optional[int],
    ) -> bool:
        """Cheap pre-join viability of a Constraint-I-violating pendant.

        Decides, *before* paying for the embedding join, whether a new
        vertex whose pendant distances exceed D(P) could conceivably be
        repaired.  The probe is a data-graph BFS from the pendant's would-be
        image whose only terminals are the row's *diameter* images: reaching
        the image of diameter position ``p`` after walking ``k``
        intermediate vertices models a repair path of length ``k + 1`` onto
        the diameter, giving the pendant a conceivable head distance of
        ``p + k + 1`` (tail: ``(D(P) − p) + k + 1``).  Twig vertices need no
        special treatment: a repair through a (current or future) twig is a
        walk through its image, and its distance contribution is exactly the
        walked length.  Because the model depends only on the data graph,
        the diameter images and the pendant image, results are memoised per
        cluster (``_probe_cache``) — sibling states share everything the
        probe looks at.

        Rejecting here reproduces the original cheap-first ordering of the
        constraint checks for the overwhelmingly common case of an endpoint
        twig with no cycle through it in the data.
        """
        limit = state.diameter_len
        levels = state.levels
        horizon = max_level if max_level is not None else level + limit
        pendant_head, pendant_tail = new_vertex_distances(state, parent)
        table = state.table
        deficient_parent = (
            state.dist_head[parent] > limit or state.dist_tail[parent] > limit
        )

        for side, pendant_distance in ((0, pendant_head), (1, pendant_tail)):
            if pendant_distance <= limit:
                continue
            # Transitive shortcut: a deficient parent that gets repaired
            # down to its level drags the pendant along.
            if deficient_parent and levels[parent] + 2 <= limit:
                continue
            satisfied = False
            for row_index, data_vertex in join_pairs:
                graph_index = table.graph_ids[row_index]
                diameter_images = table.rows[row_index][: limit + 1]
                key = (graph_index, data_vertex, side, level, diameter_images)
                cached = self._probe_cache.get(key)
                if cached is None:
                    cached = self._probe_bfs(
                        graph_index, data_vertex, side, level, limit, horizon,
                        diameter_images,
                    )
                    self._probe_cache[key] = cached
                if cached:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def _probe_bfs(
        self,
        graph_index: int,
        start: VertexId,
        side: int,
        level: int,
        limit: int,
        horizon: int,
        diameter_images: Tuple[VertexId, ...],
    ) -> bool:
        """BFS core of :meth:`_pendant_probe_viable` (terminals = diameter images)."""
        graph = self._context.graph(graph_index)
        ball = self._diameter_ball(graph_index, diameter_images, limit, horizon)
        terminal = {image: position for position, image in enumerate(diameter_images)}
        visited = {start}
        frontier = [start]
        depth = 0
        while frontier and depth + 1 <= limit:
            next_frontier = []
            for data_vertex in frontier:
                for neighbor in graph.neighbors(data_vertex):
                    if neighbor in terminal:
                        if depth == 0 and level > 1:
                            # A direct pendant–diameter edge spans levels
                            # (level, 0); only iteration 1 proposes those.
                            continue
                        position = terminal[neighbor]
                        distance = position if side == 0 else limit - position
                        if distance + depth + 1 <= limit:
                            return True
                    elif neighbor not in visited:
                        visited.add(neighbor)
                        if len(visited) > self._VIABILITY_BFS_CAP:
                            return True  # give up conservatively
                        if ball.get(neighbor, horizon + 1) <= horizon:
                            next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        return False

    def _diameter_ball(
        self, graph_index: int, row: Tuple[VertexId, ...], limit: int, horizon: int
    ) -> Dict[VertexId, int]:
        """Data distance to the row's diameter images, up to the horizon.

        A future repair-partner vertex ``w`` has pattern level
        ``dist(w, L) ≥`` the data distance of its image to the diameter
        images, so unmapped vertices outside this ball can never be grown at
        all and must not be walked through.  Cached per distinct diameter
        image tuple — every state of a cluster shares its root's diameter
        images, so in practice this is computed once or twice per cluster.
        """
        key = (graph_index, horizon) + tuple(row[: limit + 1])
        cached = self._diameter_ball_cache.get(key)
        if cached is not None:
            return cached
        graph = self._context.graph(graph_index)
        distances = {row[position]: 0 for position in range(limit + 1)}
        frontier = list(distances)
        depth = 0
        while frontier and depth < horizon:
            depth += 1
            next_frontier = []
            for vertex in frontier:
                for neighbor in graph.neighbors(vertex):
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        self._diameter_ball_cache[key] = distances
        return distances

    def _repair_bfs(
        self,
        graph_index: int,
        row: Tuple[VertexId, ...],
        columns: Sequence[VertexId],
        start: VertexId,
        exclude: Optional[VertexId],
        limit: int,
        ball: Dict[VertexId, int],
        horizon: int,
        future_ok: bool,
        depth0_accept,
        target_value,
    ) -> bool:
        """Layered BFS from ``start`` through unmapped data vertices.

        Landing on the image of a mapped pattern vertex ``y`` after walking
        ``depth`` unmapped vertices models the repair path
        ``d – w₁ – … – w_depth – y``; the search succeeds as soon as
        ``target_value(y) + depth + 1 ≤ limit`` for an admissible ``y``
        (``depth0_accept`` gates direct partners; ``future_ok`` gates paths
        through future vertices).  Unmapped vertices are only traversed
        while inside ``ball`` (level feasibility) and the search gives up —
        conservatively answering True — past ``_VIABILITY_BFS_CAP`` visits.
        """
        graph = self._context.graph(graph_index)
        mapped = {vertex: idx for idx, vertex in enumerate(row)}
        visited = {start}
        frontier = [start]
        depth = 0
        while frontier and depth + 1 <= limit:
            next_frontier = []
            for data_vertex in frontier:
                for neighbor in graph.neighbors(data_vertex):
                    if neighbor in mapped:
                        y = columns[mapped[neighbor]]
                        if y == exclude:
                            continue
                        if depth == 0:
                            if not depth0_accept(y):
                                continue
                        elif not future_ok:
                            continue
                        if target_value(y) + depth + 1 <= limit:
                            return True
                    elif neighbor not in visited:
                        visited.add(neighbor)
                        if len(visited) > self._VIABILITY_BFS_CAP:
                            return True  # give up conservatively
                        if ball.get(neighbor, horizon + 1) <= horizon:
                            next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        return False

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    def _candidate_extensions(
        self, state: GrowthState, level: int
    ) -> List[Tuple[Extension, ExtensionJoin]]:
        """Extensions allowed at iteration ``level`` with their embedding joins.

        One pass over the embedding table's adjacency both proposes every
        extension that occurs somewhere in the data (pattern-growth style —
        this is what makes the search cluster-local) and records, per
        extension, which rows realise it; applying the extension later joins
        on exactly those deltas instead of re-scanning the table.
        """
        pattern = state.pattern
        levels = state.levels
        table = state.table
        columns = table.columns
        context = self._context
        parents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level - 1
        ]
        currents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level
        ]

        new_vertex_joins: Dict[Tuple[VertexId, str], List[Tuple[int, VertexId]]] = {}
        edge_joins: Dict[Tuple[VertexId, VertexId], Set[int]] = {}

        for row_index, (graph_index, row) in enumerate(
            zip(table.graph_ids, table.rows)
        ):
            graph = context.graph(graph_index)
            neighbors = graph.neighbors
            label_of = graph.label_of
            for parent, parent_position in parents:
                for neighbor in neighbors(row[parent_position]):
                    if neighbor in row:
                        other = columns[row.index(neighbor)]
                        if (
                            levels.get(other) == level
                            and not pattern.has_edge(parent, other)
                        ):
                            edge_joins.setdefault((parent, other), set()).add(row_index)
                    else:
                        new_vertex_joins.setdefault(
                            (parent, str(label_of(neighbor))), []
                        ).append((row_index, neighbor))
            for current, current_position in currents:
                for neighbor in neighbors(row[current_position]):
                    if neighbor in row:
                        other = columns[row.index(neighbor)]
                        if (
                            levels.get(other) == level
                            and other != current
                            and not pattern.has_edge(current, other)
                        ):
                            edge_joins.setdefault(
                                (min(current, other), max(current, other)), set()
                            ).add(row_index)

        ordered: List[Tuple[Extension, ExtensionJoin]] = [
            (NewVertexExtension(parent, label), new_vertex_joins[(parent, label)])
            for parent, label in sorted(new_vertex_joins)
        ]
        ordered.extend(
            (ExistingEdgeExtension(u, v), sorted(edge_joins[(u, v)]))
            for u, v in sorted(edge_joins, key=lambda uv: (min(uv), max(uv)))
        )
        return ordered

    # ------------------------------------------------------------------ #
    # extension application
    # ------------------------------------------------------------------ #
    def _apply_extension(
        self,
        state: GrowthState,
        extension: Extension,
        join: ExtensionJoin,
        level: int,
    ) -> Optional[GrowthState]:
        if isinstance(extension, NewVertexExtension):
            return self._apply_new_vertex(state, extension, join, level)
        if isinstance(extension, ExistingEdgeExtension):
            return self._apply_existing_edge(state, extension, join)
        raise TypeError(f"unknown extension type: {extension!r}")

    def _apply_new_vertex(
        self,
        state: GrowthState,
        extension: NewVertexExtension,
        join_pairs: Sequence[Tuple[int, VertexId]],
        level: int,
    ) -> Optional[GrowthState]:
        # Constraint I is NOT checked here: a pendant landing beyond D(P) is
        # repairable by a later edge, so grow_level_full keeps such states as
        # pending.  Only the permanent Constraints II/III reject outright.
        if not permanently_admissible_new_vertex(state, extension.parent, extension.label):
            self.statistics.candidates_rejected_constraints += 1
            return None

        new_vertex = state.next_vertex_id()
        table = state.table.extended(new_vertex, join_pairs)
        if not table.rows:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_vertex(new_vertex, extension.label)
        pattern.add_edge(extension.parent, new_vertex)
        support = self._context.support_of_table(table, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        dist_head, dist_tail = new_vertex_distances(state, extension.parent)
        levels = dict(state.levels)
        levels[new_vertex] = level
        new_dist_head = dict(state.dist_head)
        new_dist_tail = dict(state.dist_tail)
        new_dist_head[new_vertex] = dist_head
        new_dist_tail[new_vertex] = dist_tail
        limit = state.diameter_len
        pendant_excess = max(0, dist_head - limit) + max(0, dist_tail - limit)
        extended = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=levels,
            dist_head=new_dist_head,
            dist_tail=new_dist_tail,
            table=table,
            support=support,
            last_extension=("new", extension.parent, extension.label),
            tainted=state.tainted or pendant_excess > 0,
        )
        # Along the never-pending fast path a pendant changes no existing
        # distance, so the excess stays 0 in O(1); tainted states pay the
        # exact eccentricity-based accounting.
        extended.deficiency = (
            _total_deficiency(extended) if extended.tainted else 0
        )
        return extended

    def _apply_existing_edge(
        self,
        state: GrowthState,
        extension: ExistingEdgeExtension,
        join_rows: Sequence[int],
    ) -> Optional[GrowthState]:
        u, v = extension.u, extension.v
        if not admissible_existing_edge(state, u, v):
            self.statistics.candidates_rejected_constraints += 1
            return None

        table = state.table.subset(join_rows)
        if not table.rows:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_edge(u, v)
        support = self._context.support_of_table(table, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        carrier = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=dict(state.levels),
            dist_head=dict(state.dist_head),
            dist_tail=dict(state.dist_tail),
            table=table,
            support=support,
            last_extension=("edge", u, v),
            tainted=state.tainted,
        )
        dist_head, dist_tail = distances_after_existing_edge(carrier, u, v)
        carrier.dist_head = dist_head
        carrier.dist_tail = dist_tail
        # Relaxation can shrink many distances at once; recompute (edges
        # between existing vertices are rare relative to pendant candidates).
        carrier.deficiency = _total_deficiency(carrier)
        return carrier
