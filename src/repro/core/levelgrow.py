"""LevelGrow — Stage II of SkinnyMine: constraint-preserving pattern growth.

Section 3.1 / Algorithm 3 of the paper.  Each canonical diameter mined by
DiamMine is grown level by level: iteration ``i`` adds only edges that either
attach a *new* i-level vertex to an (i-1)-level vertex, connect an existing
(i-1)-level vertex to an existing i-level vertex, or connect two existing
i-level vertices.  Every extension must preserve the canonical diameter
(Loop Invariant 1), which is checked locally through the
``D_H`` / ``D_T`` indices (:mod:`repro.core.constraints`), and must stay
frequent in the data.

Embedding maintenance is *incremental*: a pattern's occurrences live in a
columnar :class:`repro.graph.embeddings.EmbeddingTable`, and one adjacency
scan over that table both proposes the admissible extensions **and** records
each extension's join — the ``(row, data vertex)`` pairs (new twig vertex) or
surviving row indices (edge between mapped vertices) that realise it.
Applying an extension is then a pure join against the parent table; no
embedding is ever re-matched, no per-embedding dict or image set is built.

Duplicate elimination.  The canonical diameter already partitions the result
space into disjoint clusters (patterns sharing a diameter), so duplicates can
only arise *within* a cluster, from reaching the same pattern through
different edge-addition orders.  The paper orders extension edges and anchors
each pattern at its last added edge (gSpan style); this implementation keeps
the canonical ordering of candidate extensions but guarantees uniqueness with
an explicit per-cluster registry keyed by exact canonical forms, which is
simpler to reason about and immune to corner cases in the anchor ordering
when new twig vertices are created dynamically.  The observable behaviour
(each pattern reported exactly once, only cluster-local candidates examined)
matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.constraints import (
    admissible_existing_edge,
    admissible_new_vertex,
    distances_after_existing_edge,
    new_vertex_distances,
)
from repro.core.database import MiningContext
from repro.core.patterns import GrowthState
from repro.graph.canonical import tree_canonical_key, wl_signature
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, VertexId


class PatternRegistry:
    """Exact duplicate detection tuned for the growth loop.

    Grown skinny patterns are overwhelmingly *trees* (the canonical diameter
    plus pendant twigs), and free labeled trees have an exact near-linear
    canonical form — so the registry keys trees by
    :func:`repro.graph.canonical.tree_canonical_key` directly, one set
    membership test per candidate, memoised across all growth levels.  Only
    patterns with cycles (edge-closing extensions) fall back to bucketing by
    a Weisfeiler–Lehman signature with an exact labeled-isomorphism test on
    collision; the signature records the whole refinement trajectory, which
    keeps those buckets near-singleton.  (The minimum-DFS-code canonical
    form is *not* used here: its branch-and-bound is exponential on exactly
    the twig-heavy patterns the growth loop mass-produces.)  Isomorphic
    patterns are always detected — tree keys and the VF2 confirmation are
    exact, the signature is isomorphism-invariant — so the registry never
    reports a false duplicate nor misses a true one.
    """

    def __init__(self) -> None:
        self._tree_keys: Set[Tuple] = set()
        self._buckets: Dict[Tuple, List[LabeledGraph]] = {}
        self._count = 0

    def add_if_new(self, pattern: LabeledGraph) -> bool:
        """Register ``pattern``; return True if it was not seen before."""
        if pattern.num_edges() == pattern.num_vertices() - 1:
            try:
                key = tree_canonical_key(pattern)
            except ValueError:
                key = None  # right edge count but disconnected: not a tree
            if key is not None:
                if key in self._tree_keys:
                    return False
                self._tree_keys.add(key)
                self._count += 1
                return True
        signature = wl_signature(pattern)
        bucket = self._buckets.setdefault(signature, [])
        for member in bucket:
            if are_isomorphic(pattern, member):
                return False
        bucket.append(pattern)
        self._count += 1
        return True

    def __len__(self) -> int:
        return self._count


@dataclass(frozen=True)
class NewVertexExtension:
    """Attach a new vertex with ``label`` to pattern vertex ``parent``."""

    parent: VertexId
    label: str

    def sort_key(self) -> Tuple:
        return (0, self.parent, self.label)


@dataclass(frozen=True)
class ExistingEdgeExtension:
    """Add the pattern edge (u, v) between two existing vertices."""

    u: VertexId
    v: VertexId

    def sort_key(self) -> Tuple:
        return (1, min(self.u, self.v), max(self.u, self.v))


Extension = object  # union of the two dataclasses above

#: The join recorded for one candidate while scanning the embedding table:
#: ``(row index, data vertex)`` pairs for a new-vertex extension, or the
#: sorted surviving row indices for an edge between mapped vertices.
ExtensionJoin = Union[List[Tuple[int, VertexId]], List[int]]


@dataclass
class LevelGrowStatistics:
    """Counters exposed for the scalability experiments (Figures 16–18)."""

    candidates_generated: int = 0
    candidates_rejected_constraints: int = 0
    candidates_rejected_support: int = 0
    candidates_rejected_duplicate: int = 0
    patterns_emitted: int = 0

    def merge(self, other: "LevelGrowStatistics") -> None:
        self.candidates_generated += other.candidates_generated
        self.candidates_rejected_constraints += other.candidates_rejected_constraints
        self.candidates_rejected_support += other.candidates_rejected_support
        self.candidates_rejected_duplicate += other.candidates_rejected_duplicate
        self.patterns_emitted += other.patterns_emitted


class LevelGrower:
    """Grows patterns one level at a time (Algorithm 3).

    One ``LevelGrower`` is created per canonical-diameter cluster; it owns the
    cluster's duplicate registry so the same pattern is never emitted twice
    even across level iterations.
    """

    def __init__(
        self,
        context: MiningContext,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = context
        self._max_patterns = max_patterns
        self._registry = PatternRegistry()
        self.statistics = LevelGrowStatistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def register(self, state: GrowthState) -> None:
        """Record a pattern (typically the bare diameter) in the duplicate registry."""
        self._registry.add_if_new(state.pattern)

    def grow_level(self, state: GrowthState, level: int) -> List[GrowthState]:
        """All frequent constraint-preserving patterns reachable from ``state``
        by adding one or more edges of iteration ``level``.

        Mirrors Algorithm 3: a worklist of patterns is repeatedly extended by
        admissible edges until no new pattern appears.
        """
        if level < 1:
            raise ValueError("growth levels start at 1")
        results: List[GrowthState] = []
        worklist: List[GrowthState] = [state]
        while worklist:
            current = worklist.pop()
            for extension, join in self._candidate_extensions(current, level):
                self.statistics.candidates_generated += 1
                extended = self._apply_extension(current, extension, join, level)
                if extended is None:
                    continue
                current.accepted_children += 1
                if extended.support >= current.support:
                    current.equal_support_children += 1
                if not self._registry.add_if_new(extended.pattern):
                    self.statistics.candidates_rejected_duplicate += 1
                    continue
                self.statistics.patterns_emitted += 1
                results.append(extended)
                worklist.append(extended)
                if self._max_patterns is not None and len(self._registry) > self._max_patterns:
                    return results
        return results

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    def _candidate_extensions(
        self, state: GrowthState, level: int
    ) -> List[Tuple[Extension, ExtensionJoin]]:
        """Extensions allowed at iteration ``level`` with their embedding joins.

        One pass over the embedding table's adjacency both proposes every
        extension that occurs somewhere in the data (pattern-growth style —
        this is what makes the search cluster-local) and records, per
        extension, which rows realise it; applying the extension later joins
        on exactly those deltas instead of re-scanning the table.
        """
        pattern = state.pattern
        levels = state.levels
        table = state.table
        columns = table.columns
        context = self._context
        parents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level - 1
        ]
        currents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level
        ]

        new_vertex_joins: Dict[Tuple[VertexId, str], List[Tuple[int, VertexId]]] = {}
        edge_joins: Dict[Tuple[VertexId, VertexId], Set[int]] = {}

        for row_index, (graph_index, row) in enumerate(
            zip(table.graph_ids, table.rows)
        ):
            graph = context.graph(graph_index)
            neighbors = graph.neighbors
            label_of = graph.label_of
            for parent, parent_position in parents:
                for neighbor in neighbors(row[parent_position]):
                    if neighbor in row:
                        other = columns[row.index(neighbor)]
                        if (
                            levels.get(other) == level
                            and not pattern.has_edge(parent, other)
                        ):
                            edge_joins.setdefault((parent, other), set()).add(row_index)
                    else:
                        new_vertex_joins.setdefault(
                            (parent, str(label_of(neighbor))), []
                        ).append((row_index, neighbor))
            for current, current_position in currents:
                for neighbor in neighbors(row[current_position]):
                    if neighbor in row:
                        other = columns[row.index(neighbor)]
                        if (
                            levels.get(other) == level
                            and other != current
                            and not pattern.has_edge(current, other)
                        ):
                            edge_joins.setdefault(
                                (min(current, other), max(current, other)), set()
                            ).add(row_index)

        ordered: List[Tuple[Extension, ExtensionJoin]] = [
            (NewVertexExtension(parent, label), new_vertex_joins[(parent, label)])
            for parent, label in sorted(new_vertex_joins)
        ]
        ordered.extend(
            (ExistingEdgeExtension(u, v), sorted(edge_joins[(u, v)]))
            for u, v in sorted(edge_joins, key=lambda uv: (min(uv), max(uv)))
        )
        return ordered

    # ------------------------------------------------------------------ #
    # extension application
    # ------------------------------------------------------------------ #
    def _apply_extension(
        self,
        state: GrowthState,
        extension: Extension,
        join: ExtensionJoin,
        level: int,
    ) -> Optional[GrowthState]:
        if isinstance(extension, NewVertexExtension):
            return self._apply_new_vertex(state, extension, join, level)
        if isinstance(extension, ExistingEdgeExtension):
            return self._apply_existing_edge(state, extension, join)
        raise TypeError(f"unknown extension type: {extension!r}")

    def _apply_new_vertex(
        self,
        state: GrowthState,
        extension: NewVertexExtension,
        join_pairs: Sequence[Tuple[int, VertexId]],
        level: int,
    ) -> Optional[GrowthState]:
        if not admissible_new_vertex(state, extension.parent, extension.label):
            self.statistics.candidates_rejected_constraints += 1
            return None

        new_vertex = state.next_vertex_id()
        table = state.table.extended(new_vertex, join_pairs)
        if not table.rows:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_vertex(new_vertex, extension.label)
        pattern.add_edge(extension.parent, new_vertex)
        support = self._context.support_of_table(table, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        dist_head, dist_tail = new_vertex_distances(state, extension.parent)
        levels = dict(state.levels)
        levels[new_vertex] = level
        new_dist_head = dict(state.dist_head)
        new_dist_tail = dict(state.dist_tail)
        new_dist_head[new_vertex] = dist_head
        new_dist_tail[new_vertex] = dist_tail
        return GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=levels,
            dist_head=new_dist_head,
            dist_tail=new_dist_tail,
            table=table,
            support=support,
            last_extension=("new", extension.parent, extension.label),
        )

    def _apply_existing_edge(
        self,
        state: GrowthState,
        extension: ExistingEdgeExtension,
        join_rows: Sequence[int],
    ) -> Optional[GrowthState]:
        u, v = extension.u, extension.v
        if not admissible_existing_edge(state, u, v):
            self.statistics.candidates_rejected_constraints += 1
            return None

        table = state.table.subset(join_rows)
        if not table.rows:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_edge(u, v)
        support = self._context.support_of_table(table, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        carrier = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=dict(state.levels),
            dist_head=dict(state.dist_head),
            dist_tail=dict(state.dist_tail),
            table=table,
            support=support,
            last_extension=("edge", u, v),
        )
        dist_head, dist_tail = distances_after_existing_edge(carrier, u, v)
        carrier.dist_head = dist_head
        carrier.dist_tail = dist_tail
        return carrier
