"""LevelGrow — Stage II of SkinnyMine: constraint-preserving pattern growth.

Section 3.1 / Algorithm 3 of the paper.  Each canonical diameter mined by
DiamMine is grown level by level: iteration ``i`` adds only edges that either
attach a *new* i-level vertex to an (i-1)-level vertex, connect an existing
(i-1)-level vertex to an existing i-level vertex, or connect two existing
i-level vertices.  Every extension must preserve the canonical diameter
(Loop Invariant 1), which is checked locally through the
``D_H`` / ``D_T`` indices (:mod:`repro.core.constraints`), and must stay
frequent in the data.

Embedding maintenance is *incremental*: a pattern's occurrences live in a
columnar :class:`repro.graph.embeddings.EmbeddingTable`, and one adjacency
scan over that table both proposes the admissible extensions **and** records
each extension's join — the ``(row, data vertex)`` pairs (new twig vertex) or
surviving row indices (edge between mapped vertices) that realise it.
Applying an extension is then a pure join against the parent table; no
embedding is ever re-matched, no per-embedding dict or image set is built.

Duplicate elimination.  The canonical diameter already partitions the result
space into disjoint clusters (patterns sharing a diameter), so duplicates can
only arise *within* a cluster, from reaching the same pattern through
different edge-addition orders.  The paper orders extension edges and anchors
each pattern at its last added edge (gSpan style); this implementation keeps
the canonical ordering of candidate extensions but guarantees uniqueness with
an explicit per-cluster registry keyed by exact canonical forms, which is
simpler to reason about and immune to corner cases in the anchor ordering
when new twig vertices are created dynamically.  The observable behaviour
(each pattern reported exactly once, only cluster-local candidates examined)
matches the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.constraints import (
    admissible_existing_edge,
    distances_after_existing_edge,
    new_vertex_distances,
    permanently_admissible_new_vertex,
)
from repro.core.database import MiningContext
from repro.core.patterns import GrowthState
from repro.graph.canonical import (
    UnicyclicEncodings,
    bicyclic_canonical_key,
    tree_canonical_key,
    unicyclic_canonical_key,
    wl_signature,
)
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, VertexId
from repro.graph.paths import _farthest as _descriptor_farthest
from repro.graph.paths import sum_sweep_diameter


class PatternRegistry:
    """Exact duplicate detection tuned for the growth loop.

    Grown skinny patterns are overwhelmingly *trees* (the canonical diameter
    plus pendant twigs), and free labeled trees have an exact near-linear
    canonical form — so the registry keys trees by
    :func:`repro.graph.canonical.tree_canonical_key` directly, one set
    membership test per candidate, memoised across all growth levels; in the
    growth loop that key arrives precomputed, derived incrementally from the
    parent state's carried encodings.  Single-cycle patterns — almost every
    edge-closing extension — key the same way through
    :func:`repro.graph.canonical.unicyclic_canonical_key`, and two-cycle
    patterns through :func:`repro.graph.canonical.bicyclic_canonical_key`.
    Only patterns with three or more cycles fall back to bucketing by a
    Weisfeiler–Lehman signature (vertex *and* edge-pair colour histograms
    per round) with an exact labeled-isomorphism test on collision.  (The minimum-DFS-code
    canonical form is *not* used here: its branch-and-bound is exponential
    on exactly the twig-heavy patterns the growth loop mass-produces.)
    Isomorphic patterns are always detected — the shape-specific keys and
    the VF2 confirmation are exact, the signature is isomorphism-invariant —
    so the registry never reports a false duplicate nor misses a true one.
    """

    def __init__(self) -> None:
        self._exact_keys: Set[Tuple] = set()
        self._buckets: Dict[Tuple, List[LabeledGraph]] = {}
        self._count = 0

    def add_if_new(
        self,
        pattern: LabeledGraph,
        exact_key: Optional[Tuple] = None,
        signature: Optional[Tuple] = None,
    ) -> bool:
        """Register ``pattern``; return True if it was not seen before.

        ``exact_key`` / ``signature`` accept keys the caller already holds —
        the growth loop derives tree keys incrementally from the parent
        state's carried encodings (see :class:`GrowthState`), so the
        registry must not recompute them.  Left ``None``, the keys are
        computed here exactly as before.
        """
        if exact_key is None:
            edge_count = pattern.num_edges()
            vertex_count = pattern.num_vertices()
            if edge_count == vertex_count - 1:
                try:
                    exact_key = tree_canonical_key(pattern)
                except ValueError:
                    exact_key = None  # right edge count but disconnected: not a tree
            elif edge_count == vertex_count:
                try:
                    exact_key = unicyclic_canonical_key(pattern)
                except ValueError:
                    exact_key = None  # cycle + separate tree components
            elif edge_count == vertex_count + 1:
                try:
                    exact_key = bicyclic_canonical_key(pattern)
                except ValueError:
                    exact_key = None  # two cycles in separate components
        if exact_key is not None:
            if exact_key in self._exact_keys:
                return False
            self._exact_keys.add(exact_key)
            self._count += 1
            return True
        if signature is None:
            signature = wl_signature(pattern)
        bucket = self._buckets.setdefault(signature, [])
        for member in bucket:
            if are_isomorphic(pattern, member):
                return False
        bucket.append(pattern)
        self._count += 1
        return True

    def contains_exact(self, exact_key: Tuple) -> bool:
        """True iff a pattern with this exact canonical key is registered.

        Pure membership peek — no mutation, no fallback bucketing.  The
        growth loop uses it to recognise a re-derived tree child *before*
        paying for the candidate's pattern copy and state construction.
        """
        return exact_key in self._exact_keys

    def __len__(self) -> int:
        return self._count


@dataclass(frozen=True)
class NewVertexExtension:
    """Attach a new vertex with ``label`` to pattern vertex ``parent``."""

    parent: VertexId
    label: str

    def sort_key(self) -> Tuple:
        return (0, self.parent, self.label)


@dataclass(frozen=True)
class ExistingEdgeExtension:
    """Add the pattern edge (u, v) between two existing vertices."""

    u: VertexId
    v: VertexId

    def sort_key(self) -> Tuple:
        return (1, min(self.u, self.v), max(self.u, self.v))


Extension = object  # union of the two dataclasses above


class _DuplicateChild:
    """Child recognised as a re-derivation before its state was built.

    Tree children carry an incrementally derived canonical key, so the
    duplicate registry can be peeked right after the support gate — before
    the pattern copy, distance-map copies and :class:`GrowthState`
    construction are paid for.  Only the support survives: it is exactly
    what the closed/maximal accounting (``credit`` in
    :meth:`LevelGrower.grow_level_full`) needs for a duplicate.  With that
    accounting switched off the peek runs before the embedding join and the
    support is ``None`` — nothing would ever read it.
    """

    __slots__ = ("support",)

    def __init__(self, support: Optional[int]) -> None:
        self.support = support

#: The join recorded for one candidate while scanning the embedding table:
#: ``(row index, data vertex)`` pairs for a new-vertex extension, or the
#: sorted surviving row indices for an edge between mapped vertices.
ExtensionJoin = Union[List[Tuple[int, VertexId]], List[int]]


@dataclass
class LevelGrowStatistics:
    """Counters exposed for the scalability experiments (Figures 16–18).

    ``candidates_pending`` counts candidates that violated Constraint I in a
    repairable way and entered the pending worklist (explored, not
    reported); they are *also* counted under
    ``candidates_rejected_constraints`` because, unless a later edge repairs
    them, they contribute nothing to the output.

    The emission-fast-path counters account for the incremental machinery:

    * ``canonical_incremental_hits`` — duplicate-registry keys served from
      the carried :class:`~repro.graph.canonical.TreeEncodings` (O(depth)
      derivation) instead of a batch AHU re-canonicalisation;
    * ``invariant_cache_hits`` — Loop-Invariant verdicts answered from the
      memoised diameter descriptor of an isomorphic pattern seen earlier
      (typically in another cluster that generated the same candidate);
    * ``probes_batched`` — pendant-viability probes resolved by a shared
      multi-source data-BFS frontier (counted only when the frontier served
      at least two probes) rather than a dedicated per-candidate walk.

    The ``*_seconds`` fields split Stage-2 wall-clock by phase —
    canonicalisation (key derivation + duplicate registry), verification
    (Loop-Invariant checks) and probing (pendant probes + pending-viability
    BFS) — and feed the CI perf-history gate, which bounds each phase's
    share independently of the total.
    """

    candidates_generated: int = 0
    candidates_rejected_constraints: int = 0
    candidates_rejected_support: int = 0
    candidates_rejected_duplicate: int = 0
    candidates_pending: int = 0
    patterns_emitted: int = 0
    canonical_incremental_hits: int = 0
    invariant_cache_hits: int = 0
    probes_batched: int = 0
    canonical_seconds: float = 0.0
    invariant_seconds: float = 0.0
    probe_seconds: float = 0.0

    def merge(self, other: "LevelGrowStatistics") -> None:
        self.candidates_generated += other.candidates_generated
        self.candidates_rejected_constraints += other.candidates_rejected_constraints
        self.candidates_rejected_support += other.candidates_rejected_support
        self.candidates_rejected_duplicate += other.candidates_rejected_duplicate
        self.candidates_pending += other.candidates_pending
        self.patterns_emitted += other.patterns_emitted
        self.canonical_incremental_hits += other.canonical_incremental_hits
        self.invariant_cache_hits += other.invariant_cache_hits
        self.probes_batched += other.probes_batched
        self.canonical_seconds += other.canonical_seconds
        self.invariant_seconds += other.invariant_seconds
        self.probe_seconds += other.probe_seconds

    def phase_seconds(self) -> Dict[str, float]:
        """Phase-name → accumulated seconds (the telemetry aggregate-span feed).

        The phase timers are accumulated inline per candidate (a method call
        per sample would be measurable on the emission hot path); this
        accessor is the read-side view the tracer turns into pre-timed
        ``stage2.phase.*`` spans.
        """
        return {
            "canonical": self.canonical_seconds,
            "invariant": self.invariant_seconds,
            "probe": self.probe_seconds,
        }

    def to_dict(self) -> Dict[str, object]:
        """Wire form for per-request stats (engine/service/CLI reporting)."""
        return {
            "candidates_generated": self.candidates_generated,
            "candidates_rejected_constraints": self.candidates_rejected_constraints,
            "candidates_rejected_support": self.candidates_rejected_support,
            "candidates_rejected_duplicate": self.candidates_rejected_duplicate,
            "candidates_pending": self.candidates_pending,
            "patterns_emitted": self.patterns_emitted,
            "canonical_incremental_hits": self.canonical_incremental_hits,
            "invariant_cache_hits": self.invariant_cache_hits,
            "probes_batched": self.probes_batched,
            "canonical_seconds": self.canonical_seconds,
            "invariant_seconds": self.invariant_seconds,
            "probe_seconds": self.probe_seconds,
        }


def _eccentricities(pattern: LabeledGraph) -> Dict[VertexId, int]:
    """Per-vertex eccentricity by BFS from every vertex (patterns are small)."""
    from collections import deque

    result: Dict[VertexId, int] = {}
    for source in pattern.vertices():
        distances = {source: 0}
        queue = deque([source])
        farthest = 0
        while queue:
            current = queue.popleft()
            for neighbor in pattern.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    farthest = distances[neighbor]
                    queue.append(neighbor)
        result[source] = farthest
    return result


def _deficient_vertices(state: GrowthState) -> Set[VertexId]:
    """Vertices keeping the state from being reportable.

    Untainted states only ever violate Constraint I at head/tail distances
    (the paper's induction); tainted states are judged by full eccentricity,
    since a repaired excursion can leave a twig-to-twig distance above D(P)
    with every head/tail distance in bounds.
    """
    limit = state.diameter_len
    if not state.tainted:
        return {
            vertex
            for vertex in state.levels
            if state.dist_head[vertex] > limit or state.dist_tail[vertex] > limit
        }
    return {
        vertex
        for vertex, eccentricity in _eccentricities(state.pattern).items()
        if eccentricity > limit
    }


def _total_deficiency(state: GrowthState) -> int:
    """Total distance excess over D(P) — 0 iff the state is reportable."""
    limit = state.diameter_len
    if not state.tainted:
        return sum(
            max(0, state.dist_head[vertex] - limit)
            + max(0, state.dist_tail[vertex] - limit)
            for vertex in state.levels
        )
    return sum(
        max(0, eccentricity - limit)
        for eccentricity in _eccentricities(state.pattern).values()
    )


def diameter_descriptor(
    pattern: LabeledGraph,
    seed_labels: Optional[Tuple[str, ...]] = None,
) -> Tuple[int, Tuple[str, ...]]:
    """The pattern's exact canonical-diameter descriptor.

    Returns ``(D, labels)`` where ``D`` is the graph diameter and ``labels``
    is the lexicographically smallest label sequence over every
    diameter-realising shortest path, both orientations considered.  Loop
    Invariant 1 holds for a growth state iff this descriptor equals
    ``(state.diameter_len, state.diameter_label_sequence())``: the stored
    diameter L occupies the smallest vertex ids, so the Definition-3 id
    tie-break favours it whenever the label sequences tie, and only a
    strictly smaller sequence (which would make ``labels`` differ) can
    dethrone it.  Constraint II keeps head and tail exactly D(P) apart
    through every extension, so the diameter-equality half of the old
    emission check is ``D == diameter_len`` here.

    Crucially the descriptor is a function of the *abstract pattern* alone —
    not of the cluster, the embedding table or the growth order — which is
    what makes memoising it by canonical key sound
    (:class:`DiameterDescriptorCache`).

    Per diameter-realising vertex pair the lex-min label sequence is built
    greedily layer by layer (O(D·deg) instead of enumerating paths), pruned
    against the best sequence found so far.  ``seed_labels`` may prime that
    pruning with a label sequence the caller knows to be *achievable* by
    some diameter-realising shortest path (the growth loop passes its stored
    L, achievable exactly when the diameter still equals D(P)): in the
    common all-pairs-tie case every pair then prunes within a layer or two,
    matching the cost of the historical compare-against-L check.  A seed
    never changes the result — it is ignored unless its length matches the
    diameter, and an achievable unbeaten seed *is* the lex-min.

    Phase 1 is SumSweep-style instead of all-pairs: the exact diameter
    comes from :func:`repro.graph.paths.sum_sweep_diameter` (double sweep +
    iFUB-style level processing, a handful of BFS), and full distance rows
    are then grown only from vertices that can still be diameter endpoints.
    With ``m`` a (double-sweep) midpoint and ``L(v) = d(m, v)``, the
    triangle inequality gives ``L(u) + L(v) ≥ d(u, v)``, so every
    diameter pair has an endpoint with ``L ≥ ⌈D/2⌉`` — rows start there,
    and each discovered far endpoint enqueues its partner's row so both
    orientations of every diameter pair are walked exactly as the all-pairs
    version did.
    """
    from collections import deque

    label_of = pattern.label_of
    neighbors = pattern.neighbors

    def bfs(source: VertexId) -> Dict[VertexId, int]:
        reached = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in neighbors(current):
                if neighbor not in reached:
                    reached[neighbor] = reached[current] + 1
                    queue.append(neighbor)
        return reached

    diameter = sum_sweep_diameter(pattern)

    # A midpoint of the double-sweep path keeps max L(v) near ⌈D/2⌉, which
    # makes the endpoint filter below as tight as one extra BFS can.
    start = next(iter(pattern.vertices()))
    sweep_a, _ = _descriptor_farthest(bfs(start))
    from_a = bfs(sweep_a)
    sweep_b, _ = _descriptor_farthest(from_a)
    parents: Dict[VertexId, Optional[VertexId]] = {sweep_a: None}
    queue = deque([sweep_a])
    while queue:
        current = queue.popleft()
        for neighbor in neighbors(current):
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    path = [sweep_b]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    midpoint = path[len(path) // 2]
    layer = bfs(midpoint)
    threshold = (diameter + 1) // 2

    distances: Dict[VertexId, Dict[VertexId, int]] = {}
    worklist = [vertex for vertex in pattern.vertices() if layer[vertex] >= threshold]
    enqueued = set(worklist)
    best: Optional[List[str]] = None
    if seed_labels is not None and len(seed_labels) == diameter + 1:
        best = list(seed_labels)
    for source in worklist:
        row = distances.get(source)
        if row is None:
            row = distances[source] = bfs(source)
        for target, distance in row.items():
            if distance != diameter:
                continue
            if target not in enqueued:
                # The partner of a far pair may sit below the layer
                # threshold; its row still has to be walked so the reverse
                # orientation of the pair is considered.
                enqueued.add(target)
                worklist.append(target)
            if target not in distances:
                distances[target] = bfs(target)
            # Greedy lex-min over shortest source→target paths, pruned the
            # moment its prefix compares above the best sequence so far.
            sequence = [str(label_of(source))]
            tied = best is not None and sequence[0] == best[0]
            if best is not None and sequence[0] > best[0]:
                continue
            to_target = distances[target]
            frontier = {source}
            for position in range(1, diameter + 1):
                remaining = diameter - position
                step = {
                    neighbor
                    for vertex in frontier
                    for neighbor in neighbors(vertex)
                    if to_target.get(neighbor, -1) == remaining
                }
                label = min(str(label_of(vertex)) for vertex in step)
                if tied:
                    if label > best[position]:
                        sequence = None
                        break
                    if label < best[position]:
                        tied = False
                sequence.append(label)
                frontier = {v for v in step if str(label_of(v)) == label}
            if sequence is not None and (best is None or sequence < best):
                best = sequence
    assert best is not None  # every graph has at least one farthest pair
    return (diameter, tuple(best))


class DiameterDescriptorCache:
    """Cross-cluster memo: canonical form → :func:`diameter_descriptor`.

    The same candidate pattern is routinely *generated* in several clusters
    (each cluster whose diameter it contains proposes it; only the cluster
    owning its canonical diameter emits it, the rest reject it at the
    Loop-Invariant gate).  The descriptor is a function of the abstract
    pattern, so those repeated verifications can share one computation:
    trees key directly by their (incrementally derived) AHU key; cyclic
    patterns bucket by WL signature with a VF2 confirmation, mirroring the
    duplicate registry's exactness argument.  One cache is shared across all
    the clusters of a miner — and across requests, since verdicts never go
    stale (they depend on no data, threshold or measure).

    Long-lived owners (the engine, a service) would otherwise grow the memo
    for the process lifetime — the WL buckets even pin pattern graphs — so
    the cache is bounded: past ``max_entries`` it is flushed wholesale.
    Descriptors are cheap to recompute on a miss, and a flush only costs
    the cross-request warm-up, so the simple policy beats per-hit LRU
    bookkeeping on the emission hot path.
    """

    def __init__(self, max_entries: int = 500_000) -> None:
        self._max_entries = max_entries
        self._entries = 0
        self._by_exact_key: Dict[Tuple, Tuple[int, Tuple[str, ...]]] = {}
        self._buckets: Dict[
            Tuple, List[Tuple[LabeledGraph, Tuple[int, Tuple[str, ...]]]]
        ] = {}

    def lookup(
        self,
        pattern: LabeledGraph,
        exact_key: Optional[Tuple],
        signature: Optional[Tuple],
    ) -> Optional[Tuple[int, Tuple[str, ...]]]:
        if exact_key is not None:
            return self._by_exact_key.get(exact_key)
        for member, descriptor in self._buckets.get(signature, ()):
            if are_isomorphic(pattern, member):
                return descriptor
        return None

    def store(
        self,
        pattern: LabeledGraph,
        exact_key: Optional[Tuple],
        signature: Optional[Tuple],
        descriptor: Tuple[int, Tuple[str, ...]],
    ) -> None:
        if self._entries >= self._max_entries:
            self._by_exact_key.clear()
            self._buckets.clear()
            self._entries = 0
        if exact_key is not None:
            self._by_exact_key[exact_key] = descriptor
        else:
            self._buckets.setdefault(signature, []).append((pattern, descriptor))
        self._entries += 1


@dataclass
class LevelGrowth:
    """What one ``grow_level`` pass produced.

    ``emitted`` are the reportable results: frequent, novel, and satisfying
    the full constraint.  ``pending`` are frequent intermediates that
    violate only Constraint I (a vertex temporarily further than D(P) from
    the head or tail); they must not be reported but must stay on the
    caller's frontier — an edge of a later growth level can still repair
    them (that is how 4-cycles and other edge-closed patterns, whose every
    one-edge-short sub-pattern violates the constraint, are reached).
    """

    emitted: List[GrowthState]
    pending: List[GrowthState]


class LevelGrower:
    """Grows patterns one level at a time (Algorithm 3).

    One ``LevelGrower`` is created per canonical-diameter cluster; it owns the
    cluster's duplicate registry so the same pattern is never emitted twice
    even across level iterations.
    """

    def __init__(
        self,
        context: MiningContext,
        max_patterns: Optional[int] = None,
        descriptor_cache: Optional[DiameterDescriptorCache] = None,
        child_accounting: bool = True,
    ) -> None:
        self._context = context
        self._max_patterns = max_patterns
        # The per-state accepted/equal-support child counters exist solely
        # for the closed/maximal filters.  When the caller runs neither
        # filter it can switch the accounting off, which lets the duplicate
        # fast path classify a re-derived tree child from its incremental
        # canonical key alone — before the embedding join its support (the
        # only thing the accounting consumes) would be computed by.
        self._child_accounting = child_accounting
        self._registry = PatternRegistry()
        self._pending_registry = PatternRegistry()
        # (graph_index, diameter-image tuple) -> data distance to the nearest
        # diameter image, for data vertices within the growth horizon.  The
        # diameter images of a row never change within a cluster, so this is
        # computed once per distinct root row (see _pending_viable).
        self._diameter_ball_cache: Dict[Tuple, Dict[VertexId, int]] = {}
        # Memoised pendant-probe verdicts (see _pendant_probe_viable).
        self._probe_cache: Dict[Tuple, bool] = {}
        # Loop-Invariant verdicts are derived from memoised diameter
        # descriptors; the caller (SkinnyMine, the constraint drivers) passes
        # one cache shared across its clusters so a candidate generated in
        # several clusters verifies once.
        self._descriptor_cache = (
            descriptor_cache if descriptor_cache is not None else DiameterDescriptorCache()
        )
        self.statistics = LevelGrowStatistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def register(self, state: GrowthState) -> None:
        """Record a pattern (typically the bare diameter) in the duplicate registry."""
        exact_key, signature = self._canonical_keys(state)
        self._registry.add_if_new(state.pattern, exact_key=exact_key, signature=signature)

    def grow_level(self, state: GrowthState, level: int) -> List[GrowthState]:
        """The reportable patterns of :meth:`grow_level_full` (compatibility view).

        Callers that drive a multi-level growth loop should use
        :meth:`grow_level_full` and keep the pending states on their
        frontier; this wrapper discards them.
        """
        return self.grow_level_full(state, level).emitted

    def grow_level_full(
        self, state: GrowthState, level: int, max_level: Optional[int] = None
    ) -> LevelGrowth:
        """All frequent patterns reachable from ``state`` by adding one or
        more edges of iteration ``level``, split into reportable results and
        constraint-pending intermediates.

        Mirrors Algorithm 3 with one completeness repair: a worklist of
        patterns is repeatedly extended by admissible edges until no new
        pattern appears, but candidates that violate only Constraint I
        (repairable — a later edge can shrink the offending distances) stay
        on the worklist as *pending* instead of being cut, provided every
        over-distance vertex still has a conceivable repair
        (:meth:`_pending_viable`).  Only states satisfying the full
        constraint are emitted; per-cluster duplicate registries guarantee
        each pattern (valid or pending) is explored once.  Without this, any
        pattern whose every one-edge-short sub-pattern has a too-long
        diameter — the frequent 4-cycle of the ROADMAP repro, for instance —
        is unreachable.

        ``max_level`` is the growth horizon δ when the caller knows it;
        pending viability uses it to rule out repairs that would need
        vertices of a level that will never be grown (``None`` = no horizon,
        fully conservative).
        """
        if level < 1:
            raise ValueError("growth levels start at 1")
        results: List[GrowthState] = []
        pending: List[GrowthState] = []
        if state.deficiency and not self._pending_viable(state, level, max_level):
            # A pending state carried over from an earlier level whose
            # remaining repairs are no longer proposable at this level.
            return LevelGrowth(results, pending)
        def deficient_of(grow_state: GrowthState) -> Set[VertexId]:
            """Memoised on the state object — ``id()``-keyed caches are unsafe
            here (ids are reused once rejected candidates are collected).
            """
            if not grow_state.deficiency:
                return set()
            memo = getattr(grow_state, "_deficient_memo", None)
            if memo is None:
                memo = _deficient_vertices(grow_state)
                grow_state._deficient_memo = memo
            return memo

        worklist: List[GrowthState] = [state]
        while worklist:
            current = worklist.pop()
            current_deficient = deficient_of(current)
            extensions = self._candidate_extensions(current, level)
            # One shared data-BFS frontier answers every sibling pendant
            # probe of this state (cache-filling pre-pass); the per-candidate
            # checks below then hit the cache.
            self._batch_pendant_probes(
                current, extensions, level, max_level, current_deficient
            )
            for extension, join in extensions:
                if current_deficient and not self._relevant_while_pending(
                    current, current_deficient, extension
                ):
                    # From a pending state only deficiency-relevant structure
                    # may grow; everything else commutes past the repair (it
                    # can be added later, from the repaired valid state), so
                    # skipping it here loses nothing and stops the pending
                    # space from multiplying with every unrelated extension.
                    continue
                self.statistics.candidates_generated += 1
                distances = None
                if isinstance(extension, NewVertexExtension):
                    distances = new_vertex_distances(current, extension.parent)
                    dist_head, dist_tail = distances
                    limit = current.diameter_len
                    if (
                        dist_head > limit or dist_tail > limit
                    ) and not self._pendant_probe_viable(
                        current, extension.parent, join, level, max_level
                    ):
                        # Constraint-I violation with no conceivable repair:
                        # reject before paying for the embedding join.
                        self.statistics.candidates_rejected_constraints += 1
                        continue
                extended = self._apply_extension(
                    current, extension, join, level, distances
                )
                if extended is None:
                    continue
                if type(extended) is _DuplicateChild:
                    # The incremental tree key pinned this child as a
                    # re-derivation before its state was built; only the
                    # closed/maximal accounting remains to be done (its
                    # support is None exactly when that accounting is off).
                    if extended.support is not None:
                        credited = (
                            current
                            if not current.deficiency
                            else (current.origin or current)
                        )
                        credited.accepted_children += 1
                        if extended.support >= credited.support:
                            credited.equal_support_children += 1
                    self.statistics.candidates_rejected_duplicate += 1
                    continue
                if (
                    current_deficient
                    and isinstance(extension, ExistingEdgeExtension)
                    and extension.u not in current_deficient
                    and extension.v not in current_deficient
                    and extended.deficiency >= current.deficiency
                ):
                    # Edge between valid vertices that did not advance any
                    # repair: defer it to the valid state (commutes).
                    continue
                if extended.deficiency:
                    # Repairable violation: explore (never report) while a
                    # repair is still conceivable; drop otherwise.
                    self.statistics.candidates_rejected_constraints += 1
                    if not self._pending_viable(
                        extended, level, max_level,
                        deficient_set=deficient_of(extended),
                    ):
                        continue
                    self.statistics.candidates_pending += 1
                    # Pending states remember their nearest reportable
                    # ancestor: patterns emitted out of the excursion are
                    # that ancestor's super-patterns.
                    extended.origin = current.origin if current.deficiency else current
                    exact_key, signature = self._canonical_keys(extended)
                    if self._add_if_new(
                        self._pending_registry, extended.pattern, exact_key, signature
                    ):
                        pending.append(extended)
                        worklist.append(extended)
                    continue
                # Credit the child to the state it will be reported against:
                # the pending intermediates between them are never emitted,
                # so the closed/maximal accounting must reach through to the
                # reportable ancestor.
                credited = (
                    current if not current.deficiency else (current.origin or current)
                )
                exact_key, signature = self._canonical_keys(extended)
                if not self._add_if_new(
                    self._registry, extended.pattern, exact_key, signature
                ):
                    self.statistics.candidates_rejected_duplicate += 1
                    credited.accepted_children += 1
                    if extended.support >= credited.support:
                        credited.equal_support_children += 1
                    continue
                if not self._holds_loop_invariant(
                    extended,
                    exact_key,
                    signature,
                    parent_state=current,
                    extension=extension,
                ):
                    # The pattern's true canonical diameter is some other
                    # (smaller-label) length-D(P) path: the pattern belongs
                    # to — and, when it satisfies the constraint at all, is
                    # emitted by — that diameter's own cluster.  The
                    # per-edge Constraint III checks cannot see this case
                    # when the competing path connects two twigs rather
                    # than the head and tail.  Checked after the registry so
                    # each distinct pattern pays for it once (re-derivations
                    # fall out at the duplicate gate above); no child credit
                    # — the pattern is not reportable from this cluster.
                    self.statistics.candidates_rejected_constraints += 1
                    continue
                extended.invariant_verified = True
                credited.accepted_children += 1
                if extended.support >= credited.support:
                    credited.equal_support_children += 1
                self.statistics.patterns_emitted += 1
                results.append(extended)
                worklist.append(extended)
                if self._max_patterns is not None and len(self._registry) > self._max_patterns:
                    return LevelGrowth(results, pending)
        return LevelGrowth(results, pending)

    # ------------------------------------------------------------------ #
    # canonical keys and the emission-time invariant
    # ------------------------------------------------------------------ #
    def _canonical_keys(
        self, state: GrowthState
    ) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """``(exact_key, signature)`` for the state's pattern, computed once.

        Tree-shaped states carry :class:`~repro.graph.canonical.TreeEncodings`
        derived incrementally along the growth chain, so their exact key is an
        attribute read (counted as ``canonical_incremental_hits``); states
        without encodings — cycle-closing extensions, or externally built
        states — fall back to the batch paths the registry always used.
        Exactly one of the two results is non-``None``.
        """
        started = time.perf_counter()
        exact_key: Optional[Tuple] = None
        signature: Optional[Tuple] = None
        encodings = state.tree_encodings or state.cycle_encodings
        if encodings is not None:
            exact_key = encodings.key
            self.statistics.canonical_incremental_hits += 1
        else:
            pattern = state.pattern
            edge_count = pattern.num_edges()
            vertex_count = pattern.num_vertices()
            # Growth states are connected by construction, so the shape
            # check alone picks the exact canonical form.
            if edge_count == vertex_count - 1:
                exact_key = tree_canonical_key(pattern)
            elif edge_count == vertex_count:
                exact_key = unicyclic_canonical_key(pattern)
            elif edge_count == vertex_count + 1:
                exact_key = bicyclic_canonical_key(pattern)
            if exact_key is None:
                signature = wl_signature(pattern)
        self.statistics.canonical_seconds += time.perf_counter() - started
        return exact_key, signature

    def _add_if_new(
        self,
        registry: PatternRegistry,
        pattern: LabeledGraph,
        exact_key: Optional[Tuple],
        signature: Optional[Tuple],
    ) -> bool:
        started = time.perf_counter()
        result = registry.add_if_new(pattern, exact_key=exact_key, signature=signature)
        self.statistics.canonical_seconds += time.perf_counter() - started
        return result

    def _holds_loop_invariant(
        self,
        state: GrowthState,
        exact_key: Optional[Tuple] = None,
        signature: Optional[Tuple] = None,
        parent_state: Optional[GrowthState] = None,
        extension: Optional["Extension"] = None,
    ) -> bool:
        """Loop Invariant 1 verified exactly before every emission.

        The per-edge Constraints I–III are *local*: they bound distances to
        the head and tail and inspect head–tail paths through the new edge.
        They miss two global cases — a twig-to-twig distance exceeding D(P)
        after a pending repair, and a twig-to-twig *diameter path* with a
        label sequence smaller than L (possible even along never-pending
        growth; found by the randomized cross-check suite).  Both fall out
        of one exact comparison: the pattern's
        :func:`diameter_descriptor` — its true diameter and the lex-smallest
        label sequence over diameter-realising shortest paths — must equal
        the stored ``(D(P), L)``.  Patterns failing it either violate the
        constraint outright or belong to another cluster, which emits them
        itself.

        The descriptor depends only on the abstract pattern, so verdicts are
        memoised in the shared :class:`DiameterDescriptorCache` under the
        same canonical keys the duplicate registry uses: a candidate that
        several clusters generate is verified once
        (``invariant_cache_hits``), and memoisation can never revive a
        closed soundness gap because a cached descriptor decides each
        cluster's comparison against *its own* stored diameter.
        """
        started = time.perf_counter()
        if exact_key is None and signature is None:
            exact_key, signature = self._canonical_keys(state)
        cache = self._descriptor_cache
        pattern = state.pattern
        expected = (state.diameter_len, state.diameter_label_sequence())
        descriptor = cache.lookup(pattern, exact_key, signature)
        holds: Optional[bool] = None
        if descriptor is not None:
            self.statistics.invariant_cache_hits += 1
            holds = descriptor == expected
        elif (
            parent_state is not None
            and parent_state.invariant_verified
            and isinstance(extension, NewVertexExtension)
        ):
            # Incremental verification: a pendant changes no existing
            # distance, so with the parent verified only the pairs involving
            # the new vertex can break the invariant.  A True verdict pins
            # the descriptor to the stored (D(P), L) exactly.
            holds = self._pendant_invariant_holds(state)
            if holds:
                cache.store(pattern, exact_key, signature, expected)
        if holds is None:
            # The stored L seeds the lex-min pruning; it is achievable
            # whenever the pattern's diameter still equals D(P) (L is then a
            # diameter-realising shortest head–tail path) and is ignored by
            # length otherwise, so the descriptor stays exact and cacheable.
            descriptor = diameter_descriptor(pattern, seed_labels=expected[1])
            cache.store(pattern, exact_key, signature, descriptor)
            holds = descriptor == expected
        self.statistics.invariant_seconds += time.perf_counter() - started
        return holds

    @staticmethod
    def _pendant_invariant_holds(state: GrowthState) -> bool:
        """Exact Loop-Invariant verdict for a pendant child of a verified parent.

        The parent's verification established that its diameter equals D(P)
        and no diameter-realising path beats L.  Attaching a degree-1 vertex
        ``u`` leaves every existing distance untouched, so the child can fail
        only through ``u``: either ``ecc(u) > D(P)``, or some pair ``(u, x)``
        at distance exactly D(P) carries a label sequence below L in one of
        its orientations.  One BFS from ``u`` (plus one per far pair, which
        are rare) decides this — instead of the all-pairs descriptor scan.
        """
        from collections import deque

        pattern = state.pattern
        limit = state.diameter_len
        neighbors = pattern.neighbors
        # Pendant ids are assigned by next_vertex_id (monotonically
        # increasing), so the newly attached vertex carries the largest id.
        pendant = max(state.levels)

        # Tree states carry diametral-endpoint distance maps in their
        # incremental encodings, and in a tree every vertex's eccentricity
        # is realised at an endpoint of any fixed diametral pair — so the
        # pendant's eccentricity is two dict reads.  Only ecc == D(P) needs
        # the BFS below (far pairs exist and their label sequences must be
        # compared against L); ecc decides the verdict outright otherwise.
        encodings = state.tree_encodings
        if encodings is not None:
            eccentricity = max(encodings.d1[pendant], encodings.d2[pendant])
            if eccentricity > limit:
                return False
            if eccentricity < limit:
                return True

        def distances_from(source: VertexId) -> Dict[VertexId, int]:
            reached = {source: 0}
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in neighbors(current):
                    if neighbor not in reached:
                        reached[neighbor] = reached[current] + 1
                        queue.append(neighbor)
            return reached

        from_pendant = distances_from(pendant)
        if max(from_pendant.values()) > limit:
            return False  # the pendant stretched the diameter beyond D(P)
        diameter_labels = state.diameter_label_sequence()
        label_of = pattern.label_of

        def beats(source: VertexId, to_target: Dict[VertexId, int]) -> bool:
            """Lex-min label sequence of shortest source→target paths < L?"""
            first = str(label_of(source))
            if first > diameter_labels[0]:
                return False
            if first < diameter_labels[0]:
                return True
            frontier = {source}
            for position in range(1, limit + 1):
                remaining = limit - position
                step = {
                    neighbor
                    for vertex in frontier
                    for neighbor in neighbors(vertex)
                    if to_target.get(neighbor, -1) == remaining
                }
                best = min(str(label_of(vertex)) for vertex in step)
                expected = diameter_labels[position]
                if best > expected:
                    return False
                if best < expected:
                    return True
                frontier = {v for v in step if str(label_of(v)) == best}
            return False  # equal to L: the id tie-break keeps L canonical

        for far_vertex, distance in from_pendant.items():
            if distance != limit:
                continue
            if beats(far_vertex, from_pendant):
                return False
            if beats(pendant, distances_from(far_vertex)):
                return False
        return True

    @staticmethod
    def _relevant_while_pending(
        state: GrowthState, deficient: Set[VertexId], extension: "Extension"
    ) -> bool:
        """Pre-application filter for extensions of a pending state.

        A new vertex matters only if it hangs off a deficient vertex or ends
        up deficient itself (a potential repair partner — a pendant can never
        *reduce* anyone's distance); its pendency is decided by its own
        distances, computable without applying.  An existing edge matters if
        it touches a deficient vertex; edges between valid vertices get a
        second, post-application chance in the caller (they can still repair
        transitively by shrinking a neighbour's distance).
        """
        if isinstance(extension, NewVertexExtension):
            if extension.parent in deficient:
                return True
            dist_head, dist_tail = new_vertex_distances(state, extension.parent)
            limit = state.diameter_len
            return dist_head > limit or dist_tail > limit
        return True

    # ------------------------------------------------------------------ #
    # pending viability
    # ------------------------------------------------------------------ #
    #: Visiting more data vertices than this during one viability BFS makes
    #: the check give up and answer True (it must stay conservative).
    _VIABILITY_BFS_CAP = 512

    def _pending_viable(
        self,
        state: GrowthState,
        level: int,
        max_level: Optional[int],
        deficient_set: Optional[Set[VertexId]] = None,
    ) -> bool:
        """Whether every over-distance vertex of a pending state can still be repaired.

        The check is conservative (it never rules out a genuinely repairable
        state) but prunes the combinatorial noise that would otherwise make
        relaxed growth explode: a pendant hanging off the head with nothing
        in the data to close a cycle through it can never come back within
        D(P) of the tail, so every pattern containing it is dead weight.

        A deficient vertex ``d`` is judged per violated distance (head/tail)
        by a bounded BFS in the *data* graph, one embedding row at a time:
        starting from ``d``'s image, walk through unmapped data vertices
        (the images of potential future repair-partner vertices) until a
        mapped vertex ``y`` is reached.  Walking ``k`` unmapped vertices and
        landing on ``y`` models the repair path ``d – w₁ – … – w_k – y``, so
        the violated distance could become ``eff(y) + k + 1``, where
        ``eff(y)`` is ``y``'s current distance — or, when ``y`` is itself
        deficient, its level (an optimistic but sound lower bound, since
        mutual repairs like the two arms of an 8-cycle bottom out at their
        levels).  The state is viable for ``d`` iff some row yields
        ``eff(y) + k + 1 ≤ D(P)`` under the side conditions that the repair
        edges are still proposable: a direct partner (``k = 0``) needs
        ``|level(y) − level(d)| ≤ 1`` and ``max(level(y), level(d)) ==
        level`` (that edge class's iteration is now), and any future partner
        (``k ≥ 1``) needs ``level(d) + 1 ≥ level`` and a level budget below
        the growth horizon.  Deficient vertices with a repair-marked
        deficient pattern-neighbour are marked transitively (distance
        relaxation propagates along existing edges).  The BFS visits at most
        ``_VIABILITY_BFS_CAP`` vertices per row; on overflow it answers True.
        """
        started = time.perf_counter()
        limit = state.diameter_len
        levels = state.levels
        if deficient_set is None:
            deficient_set = _deficient_vertices(state)
        if not deficient_set:
            self.statistics.probe_seconds += time.perf_counter() - started
            return True
        table = state.table
        pattern = state.pattern
        horizon = max_level if max_level is not None else level + limit

        def effective(dist_map: Dict[VertexId, int], y: VertexId) -> int:
            if y in deficient_set:
                return min(dist_map[y], levels[y])
            return dist_map[y]

        def diameter_ball(graph_index: int, row: Tuple[VertexId, ...]) -> Dict[VertexId, int]:
            return self._diameter_ball(graph_index, row, limit, horizon)

        def row_repairable(d: VertexId, dist_map: Dict[VertexId, int]) -> bool:
            position = table.position_of(d)
            future_ok = levels[d] + 1 >= level and min(levels[d] + 1, horizon) >= level

            def depth0_accept(y: VertexId) -> bool:
                return (
                    not pattern.has_edge(d, y)
                    and abs(levels[y] - levels[d]) <= 1
                    and max(levels[y], levels[d]) == level
                )

            for graph_index, row in zip(table.graph_ids, table.rows):
                if self._repair_bfs(
                    graph_index=graph_index,
                    row=row,
                    columns=table.columns,
                    start=row[position],
                    exclude=d,
                    limit=limit,
                    ball=diameter_ball(graph_index, row),
                    horizon=horizon,
                    future_ok=future_ok,
                    depth0_accept=depth0_accept,
                    target_value=lambda y: effective(dist_map, y),
                ):
                    return True
            return False

        def directly_repairable(d: VertexId) -> bool:
            if state.dist_head[d] > limit and not row_repairable(d, state.dist_head):
                return False
            if state.dist_tail[d] > limit and not row_repairable(d, state.dist_tail):
                return False
            return True

        marked = {d for d in deficient_set if directly_repairable(d)}
        changed = True
        while changed:
            changed = False
            for d in deficient_set:
                if d in marked:
                    continue
                if any(
                    neighbor in marked
                    for neighbor in pattern.neighbors(d)
                    if neighbor in deficient_set
                ):
                    marked.add(d)
                    changed = True
        self.statistics.probe_seconds += time.perf_counter() - started
        return len(marked) == len(deficient_set)

    def _batch_pendant_probes(
        self,
        state: GrowthState,
        extensions: Sequence[Tuple["Extension", "ExtensionJoin"]],
        level: int,
        max_level: Optional[int],
        deficient: Optional[Set[VertexId]] = None,
    ) -> None:
        """Answer the state's pendant-viability probes with shared BFS frontiers.

        :meth:`_pendant_probe_viable` models each probe as a data-BFS from
        one would-be pendant image toward one row's diameter images.  Sibling
        extensions of the same state ask many such probes against the *same*
        terminal set and ball — every row of a cluster shares its root's
        diameter images — so this pre-pass groups the uncached probes by
        ``(graph, diameter images, side)`` and answers each group with one
        multi-source BFS (:meth:`_probe_bfs_batch`) whose frontier carries a
        per-source bitmask.  Results land in ``_probe_cache`` under exactly
        the keys the per-candidate check reads, so verdicts are identical to
        the dedicated walks they replace; ``probes_batched`` counts probes
        that shared a frontier with at least one other.
        """
        started = time.perf_counter()
        limit = state.diameter_len
        levels = state.levels
        horizon = max_level if max_level is not None else level + limit
        table = state.table
        prefixes = table.prefixes(limit + 1)
        graph_ids = table.graph_ids
        cache = self._probe_cache
        # (graph_index, diameter_images, side) -> ordered distinct sources.
        groups: Dict[Tuple[int, Tuple[VertexId, ...], int], Dict[VertexId, None]] = {}
        for extension, join in extensions:
            if not isinstance(extension, NewVertexExtension):
                break  # candidate ordering puts all new-vertex extensions first
            if deficient and not self._relevant_while_pending(
                state, deficient, extension
            ):
                # The growth loop skips this extension outright on a pending
                # state; probing for it would be work the solo path never did.
                continue
            parent = extension.parent
            pendant_head, pendant_tail = new_vertex_distances(state, parent)
            if pendant_head <= limit and pendant_tail <= limit:
                continue
            deficient_parent = (
                state.dist_head[parent] > limit or state.dist_tail[parent] > limit
            )
            if deficient_parent and levels[parent] + 2 <= limit:
                continue  # the transitive shortcut answers without probing
            for side, pendant_distance in ((0, pendant_head), (1, pendant_tail)):
                if pendant_distance <= limit:
                    continue
                needed: List[Tuple[int, Tuple[VertexId, ...], VertexId]] = []
                satisfied = False
                for row_index, data_vertex in join:
                    graph_index = graph_ids[row_index]
                    diameter_images = prefixes[row_index]
                    cached = cache.get(
                        (graph_index, data_vertex, side, level, diameter_images)
                    )
                    if cached:
                        satisfied = True
                        break
                    if cached is None:
                        needed.append((graph_index, diameter_images, data_vertex))
                if satisfied:
                    continue
                for graph_index, diameter_images, data_vertex in needed:
                    groups.setdefault(
                        (graph_index, diameter_images, side), {}
                    ).setdefault(data_vertex)
        for (graph_index, diameter_images, side), sources in groups.items():
            starts = list(sources)
            results = self._probe_bfs_batch(
                graph_index, starts, side, level, limit, horizon, diameter_images
            )
            if len(starts) >= 2:
                self.statistics.probes_batched += len(starts)
            for data_vertex, verdict in results.items():
                cache[
                    (graph_index, data_vertex, side, level, diameter_images)
                ] = verdict
        self.statistics.probe_seconds += time.perf_counter() - started

    def _probe_bfs_batch(
        self,
        graph_index: int,
        starts: Sequence[VertexId],
        side: int,
        level: int,
        limit: int,
        horizon: int,
        diameter_images: Tuple[VertexId, ...],
    ) -> Dict[VertexId, bool]:
        """Multi-source variant of :meth:`_probe_bfs`, one frontier per group.

        Each source owns one bit; a vertex's visited mask records which
        sources have reached it, so bit ``b`` propagates to exactly the
        vertices the solo BFS from ``starts[b]`` would visit, layer for
        layer.  Per-source visit counts reproduce the solo
        ``_VIABILITY_BFS_CAP`` give-up (conservative True), and sources
        resolve out of the frontier as soon as a terminal answers them — the
        shared frontier only merges work, never changes a verdict.
        """
        graph = self._context.frozen_graph(graph_index)
        ball = self._diameter_ball(graph_index, diameter_images, limit, horizon)
        terminal = {image: position for position, image in enumerate(diameter_images)}
        bit_of = {vertex: 1 << index for index, vertex in enumerate(starts)}
        full = (1 << len(starts)) - 1
        counts = [1] * len(starts)  # each solo BFS counts its start as visited
        resolved = 0  # sources answered True (terminal reached or cap give-up)
        visited: Dict[VertexId, int] = dict(bit_of)
        frontier: Dict[VertexId, int] = dict(bit_of)
        cap = self._VIABILITY_BFS_CAP
        depth = 0
        while frontier and depth + 1 <= limit and resolved != full:
            next_frontier: Dict[VertexId, int] = {}
            for data_vertex, mask in frontier.items():
                mask &= ~resolved
                if not mask:
                    continue
                for neighbor in graph.neighbors(data_vertex):
                    if neighbor in terminal:
                        if depth == 0 and level > 1:
                            # A direct pendant–diameter edge spans levels
                            # (level, 0); only iteration 1 proposes those.
                            continue
                        position = terminal[neighbor]
                        distance = position if side == 0 else limit - position
                        if distance + depth + 1 <= limit:
                            resolved |= mask
                            break
                    else:
                        fresh = mask & ~visited.get(neighbor, 0)
                        if fresh:
                            visited[neighbor] = visited.get(neighbor, 0) | fresh
                            # Per-source cap bookkeeping (bit iteration; the
                            # masks are a handful of bits in practice).
                            bits = fresh
                            while bits:
                                low = bits & -bits
                                bits ^= low
                                source_index = low.bit_length() - 1
                                counts[source_index] += 1
                                if counts[source_index] > cap:
                                    resolved |= low  # give up conservatively
                            fresh &= ~resolved
                            if fresh and ball.get(neighbor, horizon + 1) <= horizon:
                                next_frontier[neighbor] = (
                                    next_frontier.get(neighbor, 0) | fresh
                                )
            frontier = next_frontier
            depth += 1
        return {
            vertex: bool(resolved & bit) for vertex, bit in bit_of.items()
        }

    def _pendant_probe_viable(
        self,
        state: GrowthState,
        parent: VertexId,
        join_pairs: Sequence[Tuple[int, VertexId]],
        level: int,
        max_level: Optional[int],
    ) -> bool:
        """Cheap pre-join viability of a Constraint-I-violating pendant.

        Decides, *before* paying for the embedding join, whether a new
        vertex whose pendant distances exceed D(P) could conceivably be
        repaired.  The probe is a data-graph BFS from the pendant's would-be
        image whose only terminals are the row's *diameter* images: reaching
        the image of diameter position ``p`` after walking ``k``
        intermediate vertices models a repair path of length ``k + 1`` onto
        the diameter, giving the pendant a conceivable head distance of
        ``p + k + 1`` (tail: ``(D(P) − p) + k + 1``).  Twig vertices need no
        special treatment: a repair through a (current or future) twig is a
        walk through its image, and its distance contribution is exactly the
        walked length.  Because the model depends only on the data graph,
        the diameter images and the pendant image, results are memoised per
        cluster (``_probe_cache``) — sibling states share everything the
        probe looks at.

        Rejecting here reproduces the original cheap-first ordering of the
        constraint checks for the overwhelmingly common case of an endpoint
        twig with no cycle through it in the data.
        """
        started = time.perf_counter()
        limit = state.diameter_len
        levels = state.levels
        horizon = max_level if max_level is not None else level + limit
        pendant_head, pendant_tail = new_vertex_distances(state, parent)
        table = state.table
        prefixes = table.prefixes(limit + 1)
        deficient_parent = (
            state.dist_head[parent] > limit or state.dist_tail[parent] > limit
        )

        result = True
        for side, pendant_distance in ((0, pendant_head), (1, pendant_tail)):
            if pendant_distance <= limit:
                continue
            # Transitive shortcut: a deficient parent that gets repaired
            # down to its level drags the pendant along.
            if deficient_parent and levels[parent] + 2 <= limit:
                continue
            satisfied = False
            for row_index, data_vertex in join_pairs:
                graph_index = table.graph_ids[row_index]
                diameter_images = prefixes[row_index]
                key = (graph_index, data_vertex, side, level, diameter_images)
                cached = self._probe_cache.get(key)
                if cached is None:
                    cached = self._probe_bfs(
                        graph_index, data_vertex, side, level, limit, horizon,
                        diameter_images,
                    )
                    self._probe_cache[key] = cached
                if cached:
                    satisfied = True
                    break
            if not satisfied:
                result = False
                break
        self.statistics.probe_seconds += time.perf_counter() - started
        return result

    def _probe_bfs(
        self,
        graph_index: int,
        start: VertexId,
        side: int,
        level: int,
        limit: int,
        horizon: int,
        diameter_images: Tuple[VertexId, ...],
    ) -> bool:
        """BFS core of :meth:`_pendant_probe_viable` (terminals = diameter images)."""
        graph = self._context.frozen_graph(graph_index)
        ball = self._diameter_ball(graph_index, diameter_images, limit, horizon)
        terminal = {image: position for position, image in enumerate(diameter_images)}
        visited = {start}
        frontier = [start]
        depth = 0
        while frontier and depth + 1 <= limit:
            next_frontier = []
            for data_vertex in frontier:
                for neighbor in graph.neighbors(data_vertex):
                    if neighbor in terminal:
                        if depth == 0 and level > 1:
                            # A direct pendant–diameter edge spans levels
                            # (level, 0); only iteration 1 proposes those.
                            continue
                        position = terminal[neighbor]
                        distance = position if side == 0 else limit - position
                        if distance + depth + 1 <= limit:
                            return True
                    elif neighbor not in visited:
                        visited.add(neighbor)
                        if len(visited) > self._VIABILITY_BFS_CAP:
                            return True  # give up conservatively
                        if ball.get(neighbor, horizon + 1) <= horizon:
                            next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        return False

    def _diameter_ball(
        self, graph_index: int, row: Tuple[VertexId, ...], limit: int, horizon: int
    ) -> Dict[VertexId, int]:
        """Data distance to the row's diameter images, up to the horizon.

        A future repair-partner vertex ``w`` has pattern level
        ``dist(w, L) ≥`` the data distance of its image to the diameter
        images, so unmapped vertices outside this ball can never be grown at
        all and must not be walked through.  Cached per distinct diameter
        image tuple — every state of a cluster shares its root's diameter
        images, so in practice this is computed once or twice per cluster.
        """
        key = (graph_index, horizon) + tuple(row[: limit + 1])
        cached = self._diameter_ball_cache.get(key)
        if cached is not None:
            return cached
        graph = self._context.frozen_graph(graph_index)
        distances = {row[position]: 0 for position in range(limit + 1)}
        frontier = list(distances)
        depth = 0
        while frontier and depth < horizon:
            depth += 1
            next_frontier = []
            for vertex in frontier:
                for neighbor in graph.neighbors(vertex):
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        self._diameter_ball_cache[key] = distances
        return distances

    def _repair_bfs(
        self,
        graph_index: int,
        row: Tuple[VertexId, ...],
        columns: Sequence[VertexId],
        start: VertexId,
        exclude: Optional[VertexId],
        limit: int,
        ball: Dict[VertexId, int],
        horizon: int,
        future_ok: bool,
        depth0_accept,
        target_value,
    ) -> bool:
        """Layered BFS from ``start`` through unmapped data vertices.

        Landing on the image of a mapped pattern vertex ``y`` after walking
        ``depth`` unmapped vertices models the repair path
        ``d – w₁ – … – w_depth – y``; the search succeeds as soon as
        ``target_value(y) + depth + 1 ≤ limit`` for an admissible ``y``
        (``depth0_accept`` gates direct partners; ``future_ok`` gates paths
        through future vertices).  Unmapped vertices are only traversed
        while inside ``ball`` (level feasibility) and the search gives up —
        conservatively answering True — past ``_VIABILITY_BFS_CAP`` visits.
        """
        graph = self._context.frozen_graph(graph_index)
        mapped = {vertex: idx for idx, vertex in enumerate(row)}
        visited = {start}
        frontier = [start]
        depth = 0
        while frontier and depth + 1 <= limit:
            next_frontier = []
            for data_vertex in frontier:
                for neighbor in graph.neighbors(data_vertex):
                    if neighbor in mapped:
                        y = columns[mapped[neighbor]]
                        if y == exclude:
                            continue
                        if depth == 0:
                            if not depth0_accept(y):
                                continue
                        elif not future_ok:
                            continue
                        if target_value(y) + depth + 1 <= limit:
                            return True
                    elif neighbor not in visited:
                        visited.add(neighbor)
                        if len(visited) > self._VIABILITY_BFS_CAP:
                            return True  # give up conservatively
                        if ball.get(neighbor, horizon + 1) <= horizon:
                            next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        return False

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    def _candidate_extensions(
        self, state: GrowthState, level: int
    ) -> List[Tuple[Extension, ExtensionJoin]]:
        """Extensions allowed at iteration ``level`` with their embedding joins.

        One pass over the embedding table's adjacency both proposes every
        extension that occurs somewhere in the data (pattern-growth style —
        this is what makes the search cluster-local) and records, per
        extension, which rows realise it; applying the extension later joins
        on exactly those deltas instead of re-scanning the table.

        The scan runs against the frozen CSR views of the data
        (:meth:`~repro.core.database.MiningContext.frozen_graph`): per-vertex
        sorted neighbour tuples and palette-cached label strings replace the
        dict-of-sets walk and the per-neighbour ``str(label_of(...))`` calls
        of the mutable graphs — this loop visits every data edge incident to
        every embedding image and dominates Stage-2 candidate generation.
        """
        pattern = state.pattern
        levels = state.levels
        table = state.table
        context = self._context
        # Pendant extensions can only hang off level-1 vertices; edge
        # extensions close a pair whose deeper endpoint sits at ``level``.
        parents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level - 1
        ]
        currents = [
            (vertex, table.position_of(vertex))
            for vertex, lvl in levels.items()
            if lvl == level
        ]
        has_edge = pattern.has_edge
        # Edge-closing candidates are a property of the *pattern*, not the
        # data: enumerate the handful of admissible vertex pairs once, then
        # probe each row's images directly against the data adjacency.  This
        # keeps the per-row neighbour walk (the Stage-2 hot loop) to the
        # level-1 vertices that can actually sprout a pendant.
        pairs: List[Tuple[Tuple[VertexId, VertexId], int, int]] = []
        for u, pos_u in parents:
            for v, pos_v in currents:
                if not has_edge(u, v):
                    pairs.append(((u, v), pos_u, pos_v))
        for i, (u, pos_u) in enumerate(currents):
            for v, pos_v in currents[i + 1 :]:
                if not has_edge(u, v):
                    key = (u, v) if u < v else (v, u)
                    pairs.append((key, pos_u, pos_v))

        new_vertex_joins: Dict[Tuple[VertexId, str], List[Tuple[int, VertexId]]] = {}
        edge_joins: Dict[Tuple[VertexId, VertexId], Set[int]] = {}

        last_graph_index = -1
        labeled_adjacency: Dict[VertexId, Tuple[Tuple[VertexId, str], ...]] = {}
        adjacency: Dict[VertexId, Tuple[VertexId, ...]] = {}
        for row_index, (graph_index, row) in enumerate(
            zip(table.graph_ids, table.rows)
        ):
            if graph_index != last_graph_index:
                frozen = context.frozen_graph(graph_index)
                labeled_adjacency = frozen.labeled_adjacency
                adjacency = frozen.adjacency
                last_graph_index = graph_index
            # Embeddings are injective, so a neighbour already used by the
            # row can never be a pendant image: one set membership per visit.
            row_set = set(row)
            for parent, parent_position in parents:
                # The pre-zipped runs carry each neighbour's label string
                # (needed for the extension key) without a per-visit probe.
                for neighbor, neighbor_label in labeled_adjacency[row[parent_position]]:
                    if neighbor not in row_set:
                        key = (parent, neighbor_label)
                        join = new_vertex_joins.get(key)
                        if join is None:
                            join = new_vertex_joins[key] = []
                        join.append((row_index, neighbor))
            for key, pos_u, pos_v in pairs:
                # Sorted runs stay short in skinny data; linear membership
                # beats a bisect call at these degrees.
                if row[pos_v] in adjacency[row[pos_u]]:
                    rows = edge_joins.get(key)
                    if rows is None:
                        rows = edge_joins[key] = set()
                    rows.add(row_index)

        ordered: List[Tuple[Extension, ExtensionJoin]] = [
            (NewVertexExtension(parent, label), new_vertex_joins[(parent, label)])
            for parent, label in sorted(new_vertex_joins)
        ]
        ordered.extend(
            (ExistingEdgeExtension(u, v), sorted(edge_joins[(u, v)]))
            for u, v in sorted(edge_joins, key=lambda uv: (min(uv), max(uv)))
        )
        return ordered

    # ------------------------------------------------------------------ #
    # extension application
    # ------------------------------------------------------------------ #
    def _apply_extension(
        self,
        state: GrowthState,
        extension: Extension,
        join: ExtensionJoin,
        level: int,
        distances: Optional[Tuple[int, int]] = None,
    ) -> Optional[Union[GrowthState, _DuplicateChild]]:
        if isinstance(extension, NewVertexExtension):
            return self._apply_new_vertex(state, extension, join, level, distances)
        if isinstance(extension, ExistingEdgeExtension):
            return self._apply_existing_edge(state, extension, join)
        raise TypeError(f"unknown extension type: {extension!r}")

    def _apply_new_vertex(
        self,
        state: GrowthState,
        extension: NewVertexExtension,
        join_pairs: Sequence[Tuple[int, VertexId]],
        level: int,
        distances: Optional[Tuple[int, int]] = None,
    ) -> Optional[Union[GrowthState, _DuplicateChild]]:
        new_vertex = state.next_vertex_id()
        if distances is None:
            distances = new_vertex_distances(state, extension.parent)
        dist_head, dist_tail = distances
        limit = state.diameter_len
        pendant_excess = max(0, dist_head - limit) + max(0, dist_tail - limit)

        # A pendant changes neither the shape tier nor the 2-core: derive
        # the child's canonical key from the parent's carried AHU encodings
        # (tree or unicyclic) in O(depth) instead of re-canonicalising from
        # scratch.  Having the key this early lets
        # the duplicate registry be peeked before *anything* per-candidate
        # is paid for — the admissibility BFS, the embedding join, the
        # pattern copy and the state construction: on the never-tainted path
        # the child is known to reach the main registry with deficiency 0,
        # so a key hit short-circuits to the duplicate branch (a registered
        # pattern has already been explored once, whatever gate this
        # re-derivation would have failed).  The peek uses
        # :meth:`TreeEncodings.extended_key`, which overlays the re-encoded
        # attach→root path on the parent's encodings without the dict copies
        # a full ``extend`` performs — a duplicate costs one key derivation
        # and one set probe.  With child accounting on, the peek instead
        # waits for the join so the credited support stays available.
        encodings = None
        carried = state.tree_encodings or state.cycle_encodings
        peekable = (
            carried is not None
            and not state.tainted
            and pendant_excess == 0
        )
        if peekable and not self._child_accounting:
            started = time.perf_counter()
            peek_key = carried.extended_key(
                extension.parent, new_vertex, extension.label
            )
            duplicate = self._registry.contains_exact(peek_key)
            self.statistics.canonical_seconds += time.perf_counter() - started
            if duplicate:
                self.statistics.canonical_incremental_hits += 1
                return _DuplicateChild(None)

        # Constraint I is NOT checked here: a pendant landing beyond D(P) is
        # repairable by a later edge, so grow_level_full keeps such states as
        # pending.  Only the permanent Constraints II/III reject outright.
        if not permanently_admissible_new_vertex(state, extension.parent, extension.label):
            self.statistics.candidates_rejected_constraints += 1
            return None

        table = state.table.extended(new_vertex, join_pairs)
        if not table.graph_ids:
            self.statistics.candidates_rejected_support += 1
            return None

        # The support measures read only the table, so the frequency gate
        # runs before the per-candidate pattern copy is paid for.
        support = self._context.support_of_table(table)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        if carried is not None and encodings is None:
            started = time.perf_counter()
            encodings = carried.extend(
                extension.parent, new_vertex, extension.label
            )
            if peekable and self._registry.contains_exact(encodings.key):
                self.statistics.canonical_incremental_hits += 1
                self.statistics.canonical_seconds += time.perf_counter() - started
                return _DuplicateChild(support)
            self.statistics.canonical_seconds += time.perf_counter() - started

        pattern = state.pattern.copy()
        pattern.add_vertex(new_vertex, extension.label)
        pattern.add_edge(extension.parent, new_vertex)

        levels = dict(state.levels)
        levels[new_vertex] = level
        new_dist_head = dict(state.dist_head)
        new_dist_tail = dict(state.dist_tail)
        new_dist_head[new_vertex] = dist_head
        new_dist_tail[new_vertex] = dist_tail
        extended = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=levels,
            dist_head=new_dist_head,
            dist_tail=new_dist_tail,
            table=table,
            support=support,
            last_extension=("new", extension.parent, extension.label),
            tainted=state.tainted or pendant_excess > 0,
        )
        # Along the never-pending fast path a pendant changes no existing
        # distance, so the excess stays 0 in O(1); tainted states pay the
        # exact eccentricity-based accounting.
        extended.deficiency = (
            _total_deficiency(extended) if extended.tainted else 0
        )
        # A pendant can never lie on (or shorten) a path between existing
        # vertices, so every Constraint-III prefix enumerated for this state
        # stays exact in the child: hand the memo down by shallow copy (a
        # shared reference would leak entries across sibling branches that
        # reuse the same next_vertex_id for different attachments).
        memo = getattr(state, "_constraint_three_memo", None)
        if memo:
            extended._constraint_three_memo = dict(memo)
        # The diameter path (vertices 0..D) and its labels are fixed for the
        # whole derivation; hand the cached label tuple to the child instead
        # of rebuilding it at the next constraint check.
        labels = getattr(state, "_diameter_labels", None)
        if labels is not None:
            extended._diameter_labels = labels
        if state.cycle_encodings is not None:
            extended.cycle_encodings = encodings
        else:
            extended.tree_encodings = encodings
        return extended

    def _apply_existing_edge(
        self,
        state: GrowthState,
        extension: ExistingEdgeExtension,
        join_rows: Sequence[int],
    ) -> Optional[GrowthState]:
        u, v = extension.u, extension.v
        if not admissible_existing_edge(state, u, v):
            self.statistics.candidates_rejected_constraints += 1
            return None

        table = state.table.subset(join_rows)
        if not table.graph_ids:
            self.statistics.candidates_rejected_support += 1
            return None

        support = self._context.support_of_table(table)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None
        pattern = state.pattern.copy()
        pattern.add_edge(u, v)

        carrier = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=dict(state.levels),
            dist_head=dict(state.dist_head),
            dist_tail=dict(state.dist_tail),
            table=table,
            support=support,
            last_extension=("edge", u, v),
            tainted=state.tainted,
        )
        dist_head, dist_tail = distances_after_existing_edge(carrier, u, v)
        carrier.dist_head = dist_head
        carrier.dist_tail = dist_tail
        # Relaxation can shrink many distances at once; recompute (edges
        # between existing vertices are rare relative to pendant candidates).
        carrier.deficiency = _total_deficiency(carrier)
        labels = getattr(state, "_diameter_labels", None)
        if labels is not None:
            carrier._diameter_labels = labels
        # The closing edge leaves the tree tier.  When it lands on the
        # unicyclic tier, seed the carried hanging-tree encodings: the cycle
        # is now fixed for the whole derivation chain, so every pendant
        # descendant keys incrementally (and peeks the duplicate registry)
        # instead of re-running the batch unicyclic canonicalisation.  The
        # batch build here is net-neutral — _canonical_keys would otherwise
        # compute the same key from scratch for this very state.
        if pattern.num_edges() == pattern.num_vertices():
            started = time.perf_counter()
            carrier.cycle_encodings = UnicyclicEncodings.from_graph(pattern)
            self.statistics.canonical_seconds += time.perf_counter() - started
        return carrier
