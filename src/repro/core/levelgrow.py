"""LevelGrow — Stage II of SkinnyMine: constraint-preserving pattern growth.

Section 3.1 / Algorithm 3 of the paper.  Each canonical diameter mined by
DiamMine is grown level by level: iteration ``i`` adds only edges that either
attach a *new* i-level vertex to an (i-1)-level vertex, connect an existing
(i-1)-level vertex to an existing i-level vertex, or connect two existing
i-level vertices.  Every extension must preserve the canonical diameter
(Loop Invariant 1), which is checked locally through the
``D_H`` / ``D_T`` indices (:mod:`repro.core.constraints`), and must stay
frequent in the data.

Duplicate elimination.  The canonical diameter already partitions the result
space into disjoint clusters (patterns sharing a diameter), so duplicates can
only arise *within* a cluster, from reaching the same pattern through
different edge-addition orders.  The paper orders extension edges and anchors
each pattern at its last added edge (gSpan style); this implementation keeps
the canonical ordering of candidate extensions but guarantees uniqueness with
an explicit per-cluster registry of minimum DFS codes, which is simpler to
reason about and immune to corner cases in the anchor ordering when new twig
vertices are created dynamically.  The observable behaviour (each pattern
reported exactly once, only cluster-local candidates examined) matches the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.constraints import (
    admissible_existing_edge,
    admissible_new_vertex,
    distances_after_existing_edge,
    new_vertex_distances,
)
from repro.core.database import MiningContext
from repro.core.patterns import GrowthState
from repro.graph.canonical import wl_signature
from repro.graph.embeddings import Embedding
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, VertexId


class PatternRegistry:
    """Exact duplicate detection tuned for the growth loop.

    Computing a full canonical form (minimum DFS code) per candidate is the
    dominant cost of naive duplicate elimination, so the registry buckets
    patterns by a cheap Weisfeiler–Lehman signature and confirms collisions
    with an exact labeled-isomorphism test.  Equal signatures with
    non-isomorphic members only cost an extra VF2 call; isomorphic patterns
    are always detected (the signature is isomorphism-invariant and the
    confirmation is exact), so the registry never reports a false duplicate
    nor misses a true one.
    """

    def __init__(self) -> None:
        self._buckets: Dict[Tuple, List[LabeledGraph]] = {}
        self._count = 0

    def add_if_new(self, pattern: LabeledGraph) -> bool:
        """Register ``pattern``; return True if it was not seen before."""
        signature = wl_signature(pattern)
        bucket = self._buckets.setdefault(signature, [])
        for member in bucket:
            if are_isomorphic(pattern, member):
                return False
        bucket.append(pattern)
        self._count += 1
        return True

    def __len__(self) -> int:
        return self._count


@dataclass(frozen=True)
class NewVertexExtension:
    """Attach a new vertex with ``label`` to pattern vertex ``parent``."""

    parent: VertexId
    label: str

    def sort_key(self) -> Tuple:
        return (0, self.parent, self.label)


@dataclass(frozen=True)
class ExistingEdgeExtension:
    """Add the pattern edge (u, v) between two existing vertices."""

    u: VertexId
    v: VertexId

    def sort_key(self) -> Tuple:
        return (1, min(self.u, self.v), max(self.u, self.v))


Extension = object  # union of the two dataclasses above


@dataclass
class LevelGrowStatistics:
    """Counters exposed for the scalability experiments (Figures 16–18)."""

    candidates_generated: int = 0
    candidates_rejected_constraints: int = 0
    candidates_rejected_support: int = 0
    candidates_rejected_duplicate: int = 0
    patterns_emitted: int = 0

    def merge(self, other: "LevelGrowStatistics") -> None:
        self.candidates_generated += other.candidates_generated
        self.candidates_rejected_constraints += other.candidates_rejected_constraints
        self.candidates_rejected_support += other.candidates_rejected_support
        self.candidates_rejected_duplicate += other.candidates_rejected_duplicate
        self.patterns_emitted += other.patterns_emitted


class LevelGrower:
    """Grows patterns one level at a time (Algorithm 3).

    One ``LevelGrower`` is created per canonical-diameter cluster; it owns the
    cluster's duplicate registry so the same pattern is never emitted twice
    even across level iterations.
    """

    def __init__(
        self,
        context: MiningContext,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = context
        self._max_patterns = max_patterns
        self._registry = PatternRegistry()
        self.statistics = LevelGrowStatistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def register(self, state: GrowthState) -> None:
        """Record a pattern (typically the bare diameter) in the duplicate registry."""
        self._registry.add_if_new(state.pattern)

    def grow_level(self, state: GrowthState, level: int) -> List[GrowthState]:
        """All frequent constraint-preserving patterns reachable from ``state``
        by adding one or more edges of iteration ``level``.

        Mirrors Algorithm 3: a worklist of patterns is repeatedly extended by
        admissible edges until no new pattern appears.
        """
        if level < 1:
            raise ValueError("growth levels start at 1")
        results: List[GrowthState] = []
        worklist: List[GrowthState] = [state]
        while worklist:
            current = worklist.pop()
            for extension in self._candidate_extensions(current, level):
                self.statistics.candidates_generated += 1
                extended = self._apply_extension(current, extension, level)
                if extended is None:
                    continue
                current.accepted_children += 1
                if extended.support >= current.support:
                    current.equal_support_children += 1
                if not self._registry.add_if_new(extended.pattern):
                    self.statistics.candidates_rejected_duplicate += 1
                    continue
                self.statistics.patterns_emitted += 1
                results.append(extended)
                worklist.append(extended)
                if self._max_patterns is not None and len(self._registry) > self._max_patterns:
                    return results
        return results

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    def _candidate_extensions(
        self, state: GrowthState, level: int
    ) -> List[Extension]:
        """Extensions allowed at iteration ``level``, in canonical order.

        Candidates are read off the pattern's embeddings so only edges that
        occur somewhere in the data are proposed (pattern-growth style); this
        is what makes the search cluster-local.
        """
        pattern = state.pattern
        parents = [v for v, lvl in state.levels.items() if lvl == level - 1]
        currents = [v for v, lvl in state.levels.items() if lvl == level]

        new_vertex_candidates: Set[NewVertexExtension] = set()
        edge_candidates: Set[ExistingEdgeExtension] = set()

        for embedding in state.embeddings:
            mapping = embedding.as_dict()
            image = set(mapping.values())
            graph = self._context.graph(embedding.graph_index)
            reverse = {data: pat for pat, data in mapping.items()}
            for parent in parents:
                data_parent = mapping[parent]
                for neighbor in graph.neighbors(data_parent):
                    if neighbor in image:
                        other = reverse[neighbor]
                        if (
                            state.levels.get(other) == level
                            and not pattern.has_edge(parent, other)
                        ):
                            edge_candidates.add(
                                ExistingEdgeExtension(parent, other)
                            )
                    else:
                        new_vertex_candidates.add(
                            NewVertexExtension(
                                parent, str(graph.label_of(neighbor))
                            )
                        )
            for current in currents:
                data_current = mapping[current]
                for neighbor in graph.neighbors(data_current):
                    if neighbor in image:
                        other = reverse[neighbor]
                        if (
                            state.levels.get(other) == level
                            and other != current
                            and not pattern.has_edge(current, other)
                        ):
                            edge_candidates.add(
                                ExistingEdgeExtension(
                                    min(current, other), max(current, other)
                                )
                            )

        ordered: List[Extension] = sorted(
            new_vertex_candidates, key=lambda ext: ext.sort_key()
        )
        ordered.extend(sorted(edge_candidates, key=lambda ext: ext.sort_key()))
        return ordered

    # ------------------------------------------------------------------ #
    # extension application
    # ------------------------------------------------------------------ #
    def _apply_extension(
        self, state: GrowthState, extension: Extension, level: int
    ) -> Optional[GrowthState]:
        if isinstance(extension, NewVertexExtension):
            return self._apply_new_vertex(state, extension, level)
        if isinstance(extension, ExistingEdgeExtension):
            return self._apply_existing_edge(state, extension)
        raise TypeError(f"unknown extension type: {extension!r}")

    def _apply_new_vertex(
        self, state: GrowthState, extension: NewVertexExtension, level: int
    ) -> Optional[GrowthState]:
        if not admissible_new_vertex(state, extension.parent, extension.label):
            self.statistics.candidates_rejected_constraints += 1
            return None

        new_embeddings: List[Embedding] = []
        new_vertex = state.next_vertex_id()
        for embedding in state.embeddings:
            mapping = embedding.as_dict()
            image = set(mapping.values())
            graph = self._context.graph(embedding.graph_index)
            data_parent = mapping[extension.parent]
            for neighbor in graph.neighbors(data_parent):
                if neighbor in image:
                    continue
                if str(graph.label_of(neighbor)) != extension.label:
                    continue
                new_embeddings.append(embedding.extended(new_vertex, neighbor))
        if not new_embeddings:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_vertex(new_vertex, extension.label)
        pattern.add_edge(extension.parent, new_vertex)
        support = self._context.support_of_embeddings(new_embeddings, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        dist_head, dist_tail = new_vertex_distances(state, extension.parent)
        levels = dict(state.levels)
        levels[new_vertex] = level
        new_dist_head = dict(state.dist_head)
        new_dist_tail = dict(state.dist_tail)
        new_dist_head[new_vertex] = dist_head
        new_dist_tail[new_vertex] = dist_tail
        return GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=levels,
            dist_head=new_dist_head,
            dist_tail=new_dist_tail,
            embeddings=new_embeddings,
            support=support,
            last_extension=("new", extension.parent, extension.label),
        )

    def _apply_existing_edge(
        self, state: GrowthState, extension: ExistingEdgeExtension
    ) -> Optional[GrowthState]:
        u, v = extension.u, extension.v
        if not admissible_existing_edge(state, u, v):
            self.statistics.candidates_rejected_constraints += 1
            return None

        new_embeddings: List[Embedding] = []
        for embedding in state.embeddings:
            graph = self._context.graph(embedding.graph_index)
            if graph.has_edge(embedding.target_of(u), embedding.target_of(v)):
                new_embeddings.append(embedding)
        if not new_embeddings:
            self.statistics.candidates_rejected_support += 1
            return None

        pattern = state.pattern.copy()
        pattern.add_edge(u, v)
        support = self._context.support_of_embeddings(new_embeddings, pattern)
        if not self._context.is_frequent(support):
            self.statistics.candidates_rejected_support += 1
            return None

        carrier = GrowthState(
            pattern=pattern,
            diameter_len=state.diameter_len,
            levels=dict(state.levels),
            dist_head=dict(state.dist_head),
            dist_tail=dict(state.dist_tail),
            embeddings=new_embeddings,
            support=support,
            last_extension=("edge", u, v),
        )
        dist_head, dist_tail = distances_after_existing_edge(carrier, u, v)
        carrier.dist_head = dist_head
        carrier.dist_tail = dist_tail
        return carrier
