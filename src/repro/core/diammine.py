"""DiamMine — Stage I of SkinnyMine: mining frequent simple paths of length l.

Section 3.2 / Algorithm 2 of the paper.  The canonical diameters of every
target pattern are frequent simple paths of length exactly ``l``; they are
the *minimal constraint-satisfying patterns* of the skinny constraint and the
anchors from which Stage II grows.  Mining them with a generic subgraph miner
would drown in the exponential number of non-path patterns, so the paper uses
a dedicated two-step procedure:

* **Step I (doubling / concatenation)** — mine all frequent paths whose
  length is a power of two up to ``2^k ≤ l`` by repeatedly concatenating two
  frequent paths of half the length end to end (``CheckConcat``).
* **Step II (merging)** — when ``l`` is not a power of two, obtain each
  length-``l`` path by overlapping two length-``2^k`` paths: one forming the
  head (prefix), one the tail (suffix), overlapping in ``2^{k+1} − l`` edges
  (``CheckMergeHead`` / ``CheckMergeTail``).

Internally the miner works with *directed* label sequences (each undirected
path appears in both orientations) because joins become simple index lookups;
results are canonicalised to undirected paths at the end (and whenever
support is counted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.database import MiningContext
from repro.core.orders import canonical_label_orientation
from repro.core.patterns import PathPattern
from repro.graph.labeled_graph import VertexId
from repro.obs.trace import NULL_TRACER, Tracer

# A directed occurrence of a path: (graph index, ordered data-vertex tuple).
DirectedOccurrence = Tuple[int, Tuple[VertexId, ...]]
LabelSeq = Tuple[str, ...]


class Stage1Mode(str, Enum):
    """How DiamMine filters intermediate (ladder) path lengths.

    ``EXACT`` (the default, and the contract for index-store builds) returns
    *every* frequent length-``l`` path: intermediate lengths are pruned by
    the support threshold only when the context's measure is anti-monotone
    (transaction or MNI support — where the prune is provably lossless);
    under embedding-count support, which is not anti-monotone, intermediates
    are kept as long as they occur at all and the threshold is applied only
    to the final length.

    ``PRUNED`` is the paper's literal Algorithm 2: every intermediate length
    is thresholded regardless of measure.  Under embedding support this is a
    heuristic (two long occurrences can share one short occurrence, so a
    frequent long path can ride on an infrequent prefix) and may miss
    frequent paths; it is opt-in and, when used for index builds, recorded
    in the :class:`repro.index.store.StoreKey` so exact and pruned entries
    never alias.

    Examples
    --------
    >>> Stage1Mode("exact") is Stage1Mode.EXACT
    True
    >>> Stage1Mode.PRUNED.value
    'pruned'
    """

    EXACT = "exact"
    PRUNED = "pruned"


def resolve_stage1_mode(
    mode: Union[str, "Stage1Mode", None],
    prune_intermediate: Optional[bool] = None,
) -> "Stage1Mode":
    """Normalise the two ways of spelling the Stage-1 exactness mode.

    ``prune_intermediate`` is the pre-exactness-mode boolean kept for
    backward compatibility; an explicit value wins over ``mode`` (``True``
    maps to :attr:`Stage1Mode.PRUNED`, ``False`` to
    :attr:`Stage1Mode.EXACT` — deferring every intermediate filter produces
    the same final result as the exact mode's measure-aware pruning).
    """
    if prune_intermediate is not None:
        return Stage1Mode.PRUNED if prune_intermediate else Stage1Mode.EXACT
    if mode is None:
        return Stage1Mode.EXACT
    return Stage1Mode(mode)


def _occurrence_key(occurrence: DirectedOccurrence) -> Tuple[int, Tuple[VertexId, ...]]:
    """Orientation-independent identity of an occurrence (min of both readings)."""
    graph_index, vertices = occurrence
    backward = tuple(reversed(vertices))
    return (graph_index, vertices if vertices <= backward else backward)


@dataclass
class _DirectedPathSet:
    """All directed occurrences of one directed label sequence."""

    labels: LabelSeq
    occurrences: Set[DirectedOccurrence] = field(default_factory=set)

    def undirected_support(self, context: MiningContext) -> int:
        deduplicated: Dict[Tuple[int, Tuple[VertexId, ...]], DirectedOccurrence] = {}
        for occurrence in self.occurrences:
            deduplicated.setdefault(_occurrence_key(occurrence), occurrence)
        return context.support_of_path_occurrences(
            deduplicated.values(), labels=self.labels
        )


class DiamMine:
    """Mine all frequent simple paths of a given length (Algorithm 2).

    Parameters
    ----------
    context:
        Data graph(s) and frequency threshold.
    max_paths_per_length:
        Optional safety valve for very dense data: stop collecting directed
        sequences of one length once this many distinct *undirected* paths
        have been found (``None`` = unlimited, the default — the paper's
        algorithm is exact).
    mode:
        The Stage-1 exactness contract (see :class:`Stage1Mode`).  The
        default :attr:`Stage1Mode.EXACT` guarantees the returned set equals
        :func:`brute_force_frequent_paths` under every support measure;
        :attr:`Stage1Mode.PRUNED` thresholds every intermediate length
        (the paper's literal Algorithm 2), which is heuristic under
        embedding-count support.
    prune_intermediate:
        Deprecated boolean spelling of ``mode`` kept for backward
        compatibility; an explicit value overrides ``mode`` (``True`` →
        pruned, ``False`` → exact).
    tracer:
        Optional :class:`repro.obs.Tracer`; when enabled, every cold ladder
        rung (``stage1.ladder``, one span per power-of-two length) and the
        Step-II merge (``stage1.merge``) become spans.  Defaults to the
        shared no-op tracer.

    Examples
    --------
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> graph = graph_from_paths([list("abc"), list("abc")])
    >>> miner = DiamMine(MiningContext(graph, 2))
    >>> [path.labels for path in miner.mine(2)]
    [('a', 'b', 'c')]
    >>> miner.mode
    <Stage1Mode.EXACT: 'exact'>
    """

    def __init__(
        self,
        context: MiningContext,
        max_paths_per_length: Optional[int] = None,
        mode: Union[str, Stage1Mode, None] = None,
        prune_intermediate: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._context = context
        self._max_paths_per_length = max_paths_per_length
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._mode = resolve_stage1_mode(mode, prune_intermediate)
        # Cache of the doubling ladder: length -> directed label seq -> set.
        self._ladder: Dict[int, Dict[LabelSeq, _DirectedPathSet]] = {}

    @property
    def mode(self) -> Stage1Mode:
        """The resolved Stage-1 exactness mode this miner runs under."""
        return self._mode

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def mine(self, length: int) -> List[PathPattern]:
        """All frequent simple paths with exactly ``length`` edges."""
        if length < 1:
            raise ValueError("path length must be at least 1")
        directed = self._mine_directed(length)
        return self._to_path_patterns(directed)

    def mine_lengths(self, lengths: Iterable[int]) -> Dict[int, List[PathPattern]]:
        """Mine several lengths at once, sharing the doubling ladder."""
        return {length: self.mine(length) for length in sorted(set(lengths))}

    def mine_at_least(self, length: int, maximum: int) -> Dict[int, List[PathPattern]]:
        """Frequent paths of every length in ``[length, maximum]``.

        The paper notes DiamMine "can be adapted to return frequent paths of
        length at least l with minor changes"; bounding by ``maximum`` keeps
        the adaptation finite.  Mining stops early at the first length with
        no frequent paths (longer frequent paths would require frequent
        sub-paths of every shorter length in all the workloads used here).
        """
        results: Dict[int, List[PathPattern]] = {}
        for current in range(length, maximum + 1):
            mined = self.mine(current)
            if not mined:
                break
            results[current] = mined
        return results

    # ------------------------------------------------------------------ #
    # Step 0: frequent edges
    # ------------------------------------------------------------------ #
    def _frequent_edges(self) -> Dict[LabelSeq, _DirectedPathSet]:
        if 1 in self._ladder:
            return self._ladder[1]
        with self._tracer.span("stage1.ladder", length=1) as span:
            collected: Dict[LabelSeq, _DirectedPathSet] = {}
            for graph_index in self._context.graph_indices():
                # Frozen CSR view: the edge sweep reads palette-cached label
                # strings instead of str()-ing every endpoint label again.
                graph = self._context.frozen_graph(graph_index)
                label_strs = graph.label_strs
                for edge in graph.edges():
                    label_u = label_strs[edge.u]
                    label_v = label_strs[edge.v]
                    for sequence, vertices in (
                        ((label_u, label_v), (edge.u, edge.v)),
                        ((label_v, label_u), (edge.v, edge.u)),
                    ):
                        entry = collected.setdefault(
                            sequence, _DirectedPathSet(labels=sequence)
                        )
                        entry.occurrences.add((graph_index, vertices))
            frequent = {
                labels: paths
                for labels, paths in collected.items()
                if self._intermediate_frequent(paths.undirected_support(self._context))
            }
            span.annotate(paths=len(frequent))
        self._ladder[1] = frequent
        return frequent

    def _intermediate_frequent(self, support: int) -> bool:
        """Frequency filter applied to intermediate (ladder) lengths.

        In exact mode the threshold is applied only when the measure makes
        the prune lossless (anti-monotone: a frequent long path cannot ride
        on an infrequent sub-path); otherwise intermediates survive as long
        as they occur at all and the threshold waits for the final length.
        """
        if (
            self._mode is Stage1Mode.PRUNED
            or self._context.support_measure.anti_monotone
        ):
            return self._context.is_frequent(support)
        return support >= 1

    # ------------------------------------------------------------------ #
    # Step I: doubling by concatenation
    # ------------------------------------------------------------------ #
    def _paths_of_length(self, length: int) -> Dict[LabelSeq, _DirectedPathSet]:
        """Frequent directed paths of ``length`` edges, length a power of two."""
        if length in self._ladder:
            return self._ladder[length]
        if length == 1:
            return self._frequent_edges()
        half = length // 2
        if half * 2 != length:
            raise ValueError("the doubling ladder only holds powers of two")
        halves = self._paths_of_length(half)
        with self._tracer.span("stage1.ladder", length=length) as span:
            joined = self._concatenate(
                halves, halves, overlap_vertices=1, target_length=length
            )
            span.annotate(paths=len(joined))
        self._ladder[length] = joined
        return joined

    def _concatenate(
        self,
        prefixes: Dict[LabelSeq, _DirectedPathSet],
        suffixes: Dict[LabelSeq, _DirectedPathSet],
        overlap_vertices: int,
        target_length: int,
    ) -> Dict[LabelSeq, _DirectedPathSet]:
        """Join two families of directed paths overlapping in ``overlap_vertices``.

        With ``overlap_vertices == 1`` this is CheckConcat (paths share one
        endpoint vertex); with larger overlaps it implements the
        CheckMergeHead/CheckMergeTail joins of Step II.  The join is done at
        the occurrence level: label compatibility is checked on sequences,
        vertex compatibility (shared overlap, disjoint remainder) on the
        occurrences themselves.
        """
        # Index suffix occurrences by (graph, first `overlap_vertices` data vertices).
        suffix_index: Dict[Tuple[int, Tuple[VertexId, ...]], List[Tuple[LabelSeq, Tuple[VertexId, ...]]]] = {}
        for labels, path_set in suffixes.items():
            for graph_index, vertices in path_set.occurrences:
                key = (graph_index, vertices[:overlap_vertices])
                suffix_index.setdefault(key, []).append((labels, vertices))

        candidates: Dict[LabelSeq, _DirectedPathSet] = {}
        for prefix_labels, prefix_set in prefixes.items():
            for graph_index, prefix_vertices in prefix_set.occurrences:
                key = (graph_index, prefix_vertices[-overlap_vertices:])
                for suffix_labels, suffix_vertices in suffix_index.get(key, ()):
                    if prefix_labels[-overlap_vertices:] != suffix_labels[:overlap_vertices]:
                        continue
                    tail_part = suffix_vertices[overlap_vertices:]
                    if len(tail_part) + len(prefix_vertices) != target_length + 1:
                        continue
                    prefix_vertex_set = set(prefix_vertices)
                    if any(vertex in prefix_vertex_set for vertex in tail_part):
                        continue
                    combined_labels = prefix_labels + suffix_labels[overlap_vertices:]
                    combined_vertices = prefix_vertices + tail_part
                    entry = candidates.setdefault(
                        combined_labels, _DirectedPathSet(labels=combined_labels)
                    )
                    entry.occurrences.add((graph_index, combined_vertices))

        frequent = {
            labels: paths
            for labels, paths in candidates.items()
            if self._intermediate_frequent(paths.undirected_support(self._context))
        }
        return self._cap(frequent)

    def _cap(
        self, paths: Dict[LabelSeq, _DirectedPathSet]
    ) -> Dict[LabelSeq, _DirectedPathSet]:
        if self._max_paths_per_length is None:
            return paths
        limit = self._max_paths_per_length
        undirected_seen: Set[LabelSeq] = set()
        kept: Dict[LabelSeq, _DirectedPathSet] = {}
        for labels in sorted(paths):
            canonical = canonical_label_orientation(labels)
            if canonical not in undirected_seen and len(undirected_seen) >= limit:
                continue
            undirected_seen.add(canonical)
            kept[labels] = paths[labels]
        return kept

    # ------------------------------------------------------------------ #
    # Step II: merging for non-powers of two
    # ------------------------------------------------------------------ #
    def _mine_directed(self, length: int) -> Dict[LabelSeq, _DirectedPathSet]:
        largest_power = 1
        while largest_power * 2 <= length:
            largest_power *= 2
        base = self._paths_of_length(largest_power)
        if largest_power == length:
            return base
        overlap_edges = 2 * largest_power - length
        if overlap_edges >= 1:
            # Merge two length-2^k paths overlapping in `overlap_edges` edges.
            with self._tracer.span("stage1.merge", length=length) as span:
                merged = self._concatenate(
                    base,
                    base,
                    overlap_vertices=overlap_edges + 1,
                    target_length=length,
                )
                span.annotate(paths=len(merged))
            return merged
        # length > 2 * largest_power cannot happen (largest_power is maximal),
        # except when largest_power == 1 and length == 2, handled by doubling.
        return self._concatenate(base, base, overlap_vertices=1, target_length=length)

    # ------------------------------------------------------------------ #
    # output canonicalisation
    # ------------------------------------------------------------------ #
    def _to_path_patterns(
        self, directed: Dict[LabelSeq, _DirectedPathSet]
    ) -> List[PathPattern]:
        grouped: Dict[LabelSeq, Set[DirectedOccurrence]] = {}
        for labels, path_set in directed.items():
            canonical = canonical_label_orientation(labels)
            bucket = grouped.setdefault(canonical, set())
            for graph_index, vertices in path_set.occurrences:
                if labels == canonical:
                    bucket.add((graph_index, vertices))
                else:
                    bucket.add((graph_index, tuple(reversed(vertices))))

        results: List[PathPattern] = []
        for labels in sorted(grouped):
            occurrences = grouped[labels]
            deduplicated: Dict[Tuple[int, Tuple[VertexId, ...]], DirectedOccurrence] = {}
            for occurrence in occurrences:
                deduplicated.setdefault(_occurrence_key(occurrence), occurrence)
            support = self._context.support_of_path_occurrences(
                deduplicated.values(), labels=labels
            )
            if not self._context.is_frequent(support):
                continue
            results.append(
                PathPattern(
                    labels=labels,
                    embeddings=tuple(sorted(deduplicated.values())),
                    support=support,
                )
            )
        return results


def mine_frequent_paths(
    context: MiningContext,
    length: int,
    max_paths_per_length: Optional[int] = None,
    mode: Union[str, Stage1Mode, None] = None,
) -> List[PathPattern]:
    """Convenience wrapper: one-shot DiamMine call."""
    return DiamMine(
        context, max_paths_per_length=max_paths_per_length, mode=mode
    ).mine(length)


def brute_force_frequent_paths(
    context: MiningContext, length: int
) -> List[PathPattern]:
    """Reference implementation: enumerate every simple path and filter by support.

    Exponential; exists to validate DiamMine on small inputs (tests compare
    the two result sets exactly).
    """
    from repro.graph.paths import unique_simple_paths

    grouped: Dict[LabelSeq, Dict[Tuple[int, Tuple[VertexId, ...]], Tuple[int, Tuple[VertexId, ...]]]] = {}
    for graph_index in context.graph_indices():
        graph = context.graph(graph_index)
        for path in unique_simple_paths(graph, length):
            labels = tuple(str(graph.label_of(vertex)) for vertex in path)
            canonical = canonical_label_orientation(labels)
            vertices = tuple(path) if labels == canonical else tuple(reversed(path))
            occurrence = (graph_index, vertices)
            grouped.setdefault(canonical, {}).setdefault(
                _occurrence_key(occurrence), occurrence
            )

    results: List[PathPattern] = []
    for labels in sorted(grouped):
        occurrences = grouped[labels]
        support = context.support_of_path_occurrences(occurrences.values(), labels=labels)
        if context.is_frequent(support):
            results.append(
                PathPattern(
                    labels=labels,
                    embeddings=tuple(sorted(occurrences.values())),
                    support=support,
                )
            )
    return results
