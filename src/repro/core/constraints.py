"""Maintaining the canonical diameter through pattern extension.

Section 3.3 of the paper reduces Loop Invariant 1 ("the stored path L stays
the canonical diameter of the pattern") to three constraints checked per edge
extension:

* **Constraint I** — the extension does not create a longer diameter;
* **Constraint II** — L still realises the shortest distance between the
  diameter's head ``v_H`` and tail ``v_T``;
* **Constraint III** — L precedes (in the total path order) every diameter
  path the extension creates.

Section 3.4 shows the checks need only the two per-vertex indices
``D^u_H`` / ``D^u_T`` (shortest distance to head / tail), not an all-pairs
shortest-path recomputation (Theorems 1–3).  This module implements exactly
those local checks plus the incremental maintenance of the indices.

Two kinds of edge extension exist during LevelGrow:

* attaching a **new twig vertex** ``u`` to an existing vertex ``v`` — the
  paper's case "edge connecting one (i-1)-level vertex and one i-level
  vertex" where the i-level vertex is new;
* adding an edge between **two existing vertices** — either two i-level
  vertices or an (i-1)-level and an i-level vertex.

Each case gets its own check functions below; the distinction matters because
a degree-1 addition can never shorten existing distances whereas an edge
between existing vertices can (and then ``D_H`` / ``D_T`` must be relaxed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.patterns import GrowthState
from repro.graph.labeled_graph import Label, LabeledGraph, VertexId


# --------------------------------------------------------------------- #
# distance index helpers
# --------------------------------------------------------------------- #
def new_vertex_distances(state: GrowthState, parent: VertexId) -> Tuple[int, int]:
    """``(D^u_H, D^u_T)`` of a new pendant vertex attached to ``parent``."""
    return state.dist_head[parent] + 1, state.dist_tail[parent] + 1


def relax_distance_map(
    pattern: LabeledGraph,
    distances: Dict[VertexId, int],
    seeds: Sequence[VertexId],
) -> Dict[VertexId, int]:
    """Propagate distance improvements after an edge insertion.

    ``distances`` maps every pattern vertex to its (previous) shortest
    distance to a fixed anchor (head or tail).  Adding an edge can only
    shrink these values; the relaxation starts from ``seeds`` (the endpoints
    of the new edge, already updated by the caller) and pushes improvements
    outward — a local update, exactly what Section 3.4 calls for.
    """
    updated = dict(distances)
    queue = list(seeds)
    while queue:
        current = queue.pop()
        base = updated[current]
        for neighbor in pattern.neighbors(current):
            if updated[neighbor] > base + 1:
                updated[neighbor] = base + 1
                queue.append(neighbor)
    return updated


def distances_after_existing_edge(
    state: GrowthState, u: VertexId, v: VertexId
) -> Tuple[Dict[VertexId, int], Dict[VertexId, int]]:
    """Recompute ``D_H`` / ``D_T`` after adding edge (u, v) between existing vertices.

    The pattern graph passed in ``state`` must *already contain* the new edge
    so the relaxation can traverse it.
    """
    dist_head = dict(state.dist_head)
    dist_tail = dict(state.dist_tail)
    changed_head: List[VertexId] = []
    changed_tail: List[VertexId] = []
    if dist_head[u] > dist_head[v] + 1:
        dist_head[u] = dist_head[v] + 1
        changed_head.append(u)
    if dist_head[v] > dist_head[u] + 1:
        dist_head[v] = dist_head[u] + 1
        changed_head.append(v)
    if dist_tail[u] > dist_tail[v] + 1:
        dist_tail[u] = dist_tail[v] + 1
        changed_tail.append(u)
    if dist_tail[v] > dist_tail[u] + 1:
        dist_tail[v] = dist_tail[u] + 1
        changed_tail.append(v)
    if changed_head:
        dist_head = relax_distance_map(state.pattern, dist_head, changed_head)
    if changed_tail:
        dist_tail = relax_distance_map(state.pattern, dist_tail, changed_tail)
    return dist_head, dist_tail


# --------------------------------------------------------------------- #
# Constraint I and II
# --------------------------------------------------------------------- #
def constraint_one_ok_new_vertex(state: GrowthState, parent: VertexId) -> bool:
    """Constraint I for a pendant extension (Theorem 1): D^u_H ≤ D(P) and D^u_T ≤ D(P)."""
    dist_head, dist_tail = new_vertex_distances(state, parent)
    return dist_head <= state.diameter_len and dist_tail <= state.diameter_len


def constraint_two_ok_new_vertex(state: GrowthState, parent: VertexId) -> bool:
    """Constraint II for a pendant extension (Theorem 2): D^u_H + D^u_T ≥ D(P).

    A degree-1 vertex cannot create a shortcut between existing vertices, so
    this always holds (``D^v_H + D^v_T ≥ D(P)`` for every existing vertex);
    the check is kept because it is the paper's stated condition and costs
    two dictionary lookups.
    """
    dist_head, dist_tail = new_vertex_distances(state, parent)
    return dist_head + dist_tail >= state.diameter_len


def constraint_two_ok_existing_edge(
    state: GrowthState, u: VertexId, v: VertexId
) -> bool:
    """Constraint II for an edge between existing vertices.

    The new edge creates candidate head–tail walks ``v_H ⇝ u – v ⇝ v_T`` and
    ``v_H ⇝ v – u ⇝ v_T``; the distance between head and tail is preserved
    iff neither is shorter than D(P).
    """
    through_uv = state.dist_head[u] + 1 + state.dist_tail[v]
    through_vu = state.dist_head[v] + 1 + state.dist_tail[u]
    return min(through_uv, through_vu) >= state.diameter_len


# --------------------------------------------------------------------- #
# Constraint III
# --------------------------------------------------------------------- #
def _shortest_paths_of_length(
    pattern: LabeledGraph,
    source: VertexId,
    target: VertexId,
    length: int,
    distances_from_source: Dict[VertexId, int],
) -> List[List[VertexId]]:
    """All shortest source→target paths, provided their length equals ``length``."""
    if distances_from_source.get(target) != length:
        return []
    paths: List[List[VertexId]] = []

    def backtrack(current: VertexId, suffix: List[VertexId]) -> None:
        if current == source:
            paths.append(list(reversed(suffix)))
            return
        for neighbor in pattern.neighbors(current):
            if distances_from_source.get(neighbor, -1) == distances_from_source[current] - 1:
                suffix.append(neighbor)
                backtrack(neighbor, suffix)
                suffix.pop()

    backtrack(target, [target])
    return paths


def _bfs_from(pattern: LabeledGraph, source: VertexId) -> Dict[VertexId, int]:
    from collections import deque

    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in pattern.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def _label_sequence(pattern: LabeledGraph, path: Sequence[VertexId]) -> Tuple[str, ...]:
    return tuple(str(pattern.label_of(vertex)) for vertex in path)


def _breaks_canonical_order(
    pattern: LabeledGraph,
    diameter_labels: Tuple[str, ...],
    candidate_path: Sequence[VertexId],
) -> bool:
    """True if a newly created diameter path precedes the stored diameter L.

    The stored diameter occupies the smallest pattern vertex ids (0..l), so
    when the label sequences are equal L wins the Definition-3 id tie-break
    automatically; only a *strictly smaller label sequence* (in either
    orientation of the new path) can dethrone L.
    """
    labels = _label_sequence(pattern, candidate_path)
    reverse_labels = tuple(reversed(labels))
    return labels < diameter_labels or reverse_labels < diameter_labels


def constraint_three_ok_new_vertex(
    state: GrowthState,
    parent: VertexId,
    new_label: Label,
) -> bool:
    """Constraint III for a pendant extension (Theorem 3, case I).

    A new diameter path can only appear when the pendant vertex ``u`` ends up
    at distance D(P) from the head or the tail, i.e. when
    ``max(D^v_H, D^v_T) = D(P) - 1`` for the attachment vertex ``v``.  In
    that case every new diameter path is a shortest head→v (or tail→v) path
    extended by ``u``; the extension is admissible iff none of those paths is
    lexicographically smaller than L.

    The anchor→v path enumeration does not depend on the pendant's label, and
    the growth loop proposes one pendant per *label* off the same attachment
    vertex — so the enumerated label sequences are memoised on the state,
    keyed by the attachment vertex, and each sibling label only pays the
    final lexicographic comparisons.
    """
    diameter = state.diameter_len
    parent_head = state.dist_head[parent]
    parent_tail = state.dist_tail[parent]
    if max(parent_head, parent_tail) != diameter - 1:
        return True
    diameter_labels = state.diameter_label_sequence()
    new_label_key = str(new_label)
    pattern = state.pattern

    memo = getattr(state, "_constraint_three_memo", None)
    if memo is None:
        memo = {}
        state._constraint_three_memo = memo
    prefixes = memo.get(parent)
    if prefixes is None:
        endpoints: List[Tuple[VertexId, int]] = []
        if parent_head == diameter - 1:
            endpoints.append((state.head, parent_head))
        if parent_tail == diameter - 1:
            endpoints.append((state.tail, parent_tail))
        prefixes = []
        for anchor, expected_length in endpoints:
            distances = _bfs_from(pattern, anchor)
            for path in _shortest_paths_of_length(
                pattern, anchor, parent, expected_length, distances
            ):
                labels = _label_sequence(pattern, path)
                prefixes.append((labels, tuple(reversed(labels))))
        memo[parent] = prefixes

    for labels, reversed_labels in prefixes:
        candidate_labels = labels + (new_label_key,)
        reverse_labels = (new_label_key,) + reversed_labels
        if candidate_labels < diameter_labels or reverse_labels < diameter_labels:
            return False
    return True


def constraint_three_ok_existing_edge(
    state: GrowthState, u: VertexId, v: VertexId
) -> bool:
    """Constraint III for an edge between existing vertices (Theorem 3, case II).

    New diameter paths must route through the new edge and connect the head
    to the tail; they exist only when ``D^u_H + D^v_T = D(P) - 1`` or
    ``D^v_H + D^u_T = D(P) - 1``.  Each such path is a shortest head→x path,
    the new edge, and a shortest y→tail path (vertex-disjoint), and the
    extension is admissible iff none of them precedes L.
    """
    diameter = state.diameter_len
    pattern = state.pattern
    diameter_labels = state.diameter_label_sequence()

    head_distances: Optional[Dict[VertexId, int]] = None
    tail_distances: Optional[Dict[VertexId, int]] = None

    for first, second in ((u, v), (v, u)):
        if state.dist_head[first] + state.dist_tail[second] != diameter - 1:
            continue
        if head_distances is None:
            head_distances = _bfs_from(pattern, state.head)
        if tail_distances is None:
            tail_distances = _bfs_from(pattern, state.tail)
        head_segments = _shortest_paths_of_length(
            pattern, state.head, first, state.dist_head[first], head_distances
        )
        tail_segments = _shortest_paths_of_length(
            pattern, state.tail, second, state.dist_tail[second], tail_distances
        )
        for head_segment in head_segments:
            head_vertices = set(head_segment)
            for tail_segment in tail_segments:
                if head_vertices & set(tail_segment):
                    continue
                candidate = head_segment + list(reversed(tail_segment))
                if _breaks_canonical_order(pattern, diameter_labels, candidate):
                    return False
    return True


# --------------------------------------------------------------------- #
# combined checks
# --------------------------------------------------------------------- #
def admissible_new_vertex(
    state: GrowthState, parent: VertexId, new_label: Label
) -> bool:
    """All three constraints for attaching a new vertex with ``new_label`` to ``parent``."""
    return (
        constraint_one_ok_new_vertex(state, parent)
        and constraint_two_ok_new_vertex(state, parent)
        and constraint_three_ok_new_vertex(state, parent, new_label)
    )


def permanently_admissible_new_vertex(
    state: GrowthState, parent: VertexId, new_label: Label
) -> bool:
    """Constraints II and III only — the checks no later edge can repair.

    A pendant vertex that fails Constraint I (it lands further than D(P)
    from the head or tail) is not doomed: a later edge of the same or a
    later growth level can shrink its distances back under the bound (the
    4-cycle is the canonical example — both of its one-edge-short trees
    violate Constraint I).  Constraint II and III failures, by contrast, are
    permanent: adding edges only shrinks distances, so a head–tail shortcut
    never un-shortcuts, and an offending lexicographically-smaller diameter
    path never disappears.  LevelGrow therefore treats a candidate that
    passes this check but fails Constraint I as *pending* — explored but not
    reported — rather than rejecting it.
    """
    return constraint_two_ok_new_vertex(state, parent) and constraint_three_ok_new_vertex(
        state, parent, new_label
    )


def admissible_existing_edge(state: GrowthState, u: VertexId, v: VertexId) -> bool:
    """All three constraints for adding an edge between existing pattern vertices.

    Constraint I is automatic here (connecting existing vertices can only
    shrink distances), so only Constraints II and III are evaluated; both
    are permanent (see :func:`permanently_admissible_new_vertex`), so a
    failure is a hard rejection even in the relaxed pending-growth flow.
    """
    return constraint_two_ok_existing_edge(state, u, v) and constraint_three_ok_existing_edge(
        state, u, v
    )


