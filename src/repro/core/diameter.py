"""Canonical diameters, vertex levels and the skinny predicates.

Implements Definitions 4–7 of the paper:

* ``canonical_diameter(G)`` — the minimum diameter-realising simple path under
  the total path order (Definition 4).  Every connected graph has exactly one.
* ``vertex_levels(G, L)`` — ``Dist(v, L)`` for every vertex (Definition 5).
* ``is_delta_skinny(G, delta)`` — every vertex within distance δ of the
  canonical diameter (Definition 6).
* ``is_l_long_delta_skinny(G, l, delta)`` — Definition 7, the target pattern
  shape of the (l, δ)-SPM problem.

These are *reference* implementations working on a whole graph: they perform
full diameter computations and are used to validate mining results, to define
ground truth in tests, and by the brute-force enumerate-and-check miner.  The
mining loop itself never calls them per candidate — it maintains the canonical
diameter incrementally via :mod:`repro.core.constraints`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.orders import canonical_orientation, path_sort_key
from repro.graph.labeled_graph import LabeledGraph, VertexId
from repro.graph.paths import all_diameter_paths, distance_to_set


def canonical_diameter(graph: LabeledGraph) -> List[VertexId]:
    """The canonical diameter L_G of a connected graph (Definition 4).

    Raises ``ValueError`` on empty or disconnected graphs, where the diameter
    (and hence the canonical diameter) is undefined.
    """
    if graph.num_vertices() == 0:
        raise ValueError("the canonical diameter of an empty graph is undefined")
    if not graph.is_connected():
        raise ValueError("the canonical diameter of a disconnected graph is undefined")
    candidates = all_diameter_paths(graph)
    oriented = [canonical_orientation(graph, path) for path in candidates]
    return min(oriented, key=lambda path: path_sort_key(graph, path))


def diameter_length(graph: LabeledGraph) -> int:
    """Length (edge count) of the canonical diameter."""
    return len(canonical_diameter(graph)) - 1


def vertex_levels(
    graph: LabeledGraph, diameter_path: Sequence[VertexId]
) -> Dict[VertexId, int]:
    """``Dist(v, L)`` for every vertex ``v`` (Definition 5).

    ``diameter_path`` is typically the canonical diameter, but any vertex
    subset works (the computation is a multi-source BFS from the path).
    """
    return distance_to_set(graph, list(diameter_path))


def is_delta_skinny(graph: LabeledGraph, delta: int) -> bool:
    """Definition 6: every vertex lies within distance δ of the canonical diameter."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if graph.num_vertices() == 0:
        return True
    if not graph.is_connected():
        return False
    levels = vertex_levels(graph, canonical_diameter(graph))
    return max(levels.values()) <= delta


def is_l_long_delta_skinny(graph: LabeledGraph, length: int, delta: int) -> bool:
    """Definition 7: canonical diameter has length exactly ``length`` and G is δ-skinny."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if graph.num_vertices() == 0 or not graph.is_connected():
        return False
    diameter_path = canonical_diameter(graph)
    if len(diameter_path) - 1 != length:
        return False
    levels = vertex_levels(graph, diameter_path)
    return max(levels.values()) <= delta


def skinniness(graph: LabeledGraph) -> int:
    """The smallest δ for which the graph is δ-skinny (max vertex level)."""
    if graph.num_vertices() == 0:
        return 0
    if not graph.is_connected():
        raise ValueError("skinniness is undefined on a disconnected graph")
    levels = vertex_levels(graph, canonical_diameter(graph))
    return max(levels.values())
