"""The mining context: data graph(s) plus a support measure.

The paper defines the problem in the single-graph setting (support =
``|E[P]|``, the number of embeddings) and notes that the graph-transaction
setting "can be easily derived".  ``MiningContext`` abstracts over both so
DiamMine, LevelGrow and the baselines are written once:

* ``SupportMeasure.EMBEDDINGS`` — distinct occurrences across all graphs
  (the paper's measure in the single-graph setting);
* ``SupportMeasure.TRANSACTIONS`` — number of transactions with ≥ 1 embedding
  (standard graph-transaction support);
* ``SupportMeasure.MNI`` — minimum-image support, offered for baseline
  harmonisation in the single-graph setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.graph.csr import CSRGraph, LabelPalette
from repro.graph.embeddings import Embedding, EmbeddingTable
from repro.graph.labeled_graph import Label, LabeledGraph, VertexId


class SupportMeasure(Enum):
    """How pattern support is computed from an embedding list.

    Two of the three measures are *anti-monotone* (a sub-pattern's support is
    never below a super-pattern's), which is what makes intermediate
    frequency pruning exact — see :attr:`anti_monotone` and
    ``docs/CORRECTNESS.md``.

    Examples
    --------
    >>> SupportMeasure.TRANSACTIONS.anti_monotone
    True
    >>> SupportMeasure.EMBEDDINGS.anti_monotone
    False
    """

    EMBEDDINGS = "embeddings"
    TRANSACTIONS = "transactions"
    MNI = "mni"

    @property
    def anti_monotone(self) -> bool:
        """Whether support can only shrink as a pattern grows.

        Transaction support (a super-pattern occurs in a subset of the
        transactions) and MNI (each position's image set only shrinks) are
        anti-monotone; raw embedding count is not — two embeddings of a
        super-pattern can restrict to the *same* embedding of a sub-pattern,
        so a sub-pattern's distinct-image count can be smaller.
        """
        return self in (SupportMeasure.TRANSACTIONS, SupportMeasure.MNI)


# --------------------------------------------------------------------- #
# deltas: incremental edits to the data graph(s)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EdgeDelta:
    """One edit to a data graph: add or remove a single undirected edge.

    ``add`` operations may introduce new endpoints; supply ``label_u`` /
    ``label_v`` for endpoints that do not exist yet (they are ignored for
    endpoints already present).  ``remove`` operations keep the endpoint
    vertices in the graph — a vertex losing its last edge becomes an isolated
    labeled vertex, which is still valid data.
    """

    op: str  # "add" | "remove"
    u: int
    v: int
    graph_index: int = 0
    label_u: Optional[Label] = None
    label_v: Optional[Label] = None
    edge_label: Optional[Label] = None

    def __post_init__(self) -> None:
        if self.op not in ("add", "remove"):
            raise ValueError(f"unknown delta op {self.op!r} (expected 'add' or 'remove')")

    @classmethod
    def add_edge(
        cls,
        u: int,
        v: int,
        graph_index: int = 0,
        label_u: Optional[Label] = None,
        label_v: Optional[Label] = None,
        edge_label: Optional[Label] = None,
    ) -> "EdgeDelta":
        return cls("add", u, v, graph_index, label_u, label_v, edge_label)

    @classmethod
    def remove_edge(cls, u: int, v: int, graph_index: int = 0) -> "EdgeDelta":
        return cls("remove", u, v, graph_index)


@dataclass
class GraphDelta:
    """An ordered batch of :class:`EdgeDelta` operations."""

    operations: List[EdgeDelta] = field(default_factory=list)

    def add_edge(self, *args, **kwargs) -> "GraphDelta":
        self.operations.append(EdgeDelta.add_edge(*args, **kwargs))
        return self

    def remove_edge(self, *args, **kwargs) -> "GraphDelta":
        self.operations.append(EdgeDelta.remove_edge(*args, **kwargs))
        return self

    def touched_vertices(self, graph_index: int = 0) -> Set[int]:
        touched: Set[int] = set()
        for operation in self.operations:
            if operation.graph_index == graph_index:
                touched.update((operation.u, operation.v))
        return touched

    def touched_graphs(self) -> Set[int]:
        """Indices of the transactions named by at least one operation."""
        return {operation.graph_index for operation in self.operations}

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)


def touched_graph_indices(
    delta: Union["GraphDelta", Iterable[EdgeDelta]]
) -> Set[int]:
    """Graph indices a delta batch writes to; every other index is untouched.

    Untouched transactions keep their content byte-for-byte across the
    delta, which is what licenses reusing their immutable frozen CSR views
    (see ``MiningContext.frozen_graph`` and
    ``MiningEngine.adopt_frozen_views``) instead of re-freezing them.

    Examples
    --------
    >>> delta = GraphDelta().add_edge(0, 1, graph_index=2, label_u="a",
    ...                               label_v="b")
    >>> touched_graph_indices(delta)
    {2}
    >>> sorted(touched_graph_indices([EdgeDelta.remove_edge(0, 1),
    ...                               EdgeDelta.remove_edge(2, 3, 5)]))
    [0, 5]
    """
    if isinstance(delta, GraphDelta):
        return delta.touched_graphs()
    return {operation.graph_index for operation in delta}


def validate_delta(
    graphs: Sequence[LabeledGraph], operations: Sequence[EdgeDelta]
) -> None:
    """Check a whole batch against the data *before* mutating anything.

    Applying a delta half-way and then raising would leave graphs, caches and
    index fingerprints describing different states, so callers validate the
    batch first.  The check simulates the sequential effect of the batch on
    vertex/edge sets (an edge added by operation i may be removed by
    operation j > i).
    """
    vertices: Dict[int, Set[int]] = {}
    edges: Dict[int, Dict[FrozenSet[int], Optional[Label]]] = {}
    for position, operation in enumerate(operations):
        index = operation.graph_index
        if not 0 <= index < len(graphs):
            raise ValueError(
                f"delta operation {position}: graph_index {index} out of range"
            )
        if index not in vertices:
            graph = graphs[index]
            vertices[index] = set(graph.vertices())
            edges[index] = {
                frozenset(edge.endpoints()): edge.label for edge in graph.edges()
            }
        edge = frozenset((operation.u, operation.v))
        if operation.op == "add":
            if operation.u == operation.v:
                raise ValueError(
                    f"delta operation {position}: self-loops are not allowed"
                )
            for vertex, label in (
                (operation.u, operation.label_u),
                (operation.v, operation.label_v),
            ):
                if vertex not in vertices[index] and label is None:
                    raise ValueError(
                        f"delta operation {position}: add_edge introduces vertex "
                        f"{vertex} without a label"
                    )
                vertices[index].add(vertex)
            if edge in edges[index] and edges[index][edge] != operation.edge_label:
                raise ValueError(
                    f"delta operation {position}: edge ({operation.u}, {operation.v}) "
                    f"already has label {edges[index][edge]!r}, "
                    f"cannot relabel to {operation.edge_label!r}"
                )
            edges[index][edge] = operation.edge_label
        else:
            if edge not in edges[index]:
                raise KeyError(
                    f"delta operation {position}: edge ({operation.u}, {operation.v}) "
                    f"is not in graph {index}"
                )
            del edges[index][edge]


def apply_edge_delta(graphs: Sequence[LabeledGraph], operation: EdgeDelta) -> None:
    """Apply one :class:`EdgeDelta` to a graph list in place."""
    graph = graphs[operation.graph_index]
    if operation.op == "add":
        for vertex, label in ((operation.u, operation.label_u), (operation.v, operation.label_v)):
            if not graph.has_vertex(vertex):
                if label is None:
                    raise ValueError(
                        f"add_edge delta introduces vertex {vertex} without a label"
                    )
                graph.add_vertex(vertex, label)
        graph.add_edge(operation.u, operation.v, operation.edge_label)
    else:
        graph.remove_edge(operation.u, operation.v)


@dataclass
class MiningContext:
    """A data graph or graph database together with the support measure.

    Parameters
    ----------
    graphs:
        The data.  Pass a single :class:`LabeledGraph` for the single-graph
        setting or a sequence of them for the transaction setting.
    min_support:
        The frequency threshold σ.
    support_measure:
        Defaults to embeddings for a single graph and transactions for a
        database, matching the paper's two settings.
    """

    graphs: List[LabeledGraph]
    min_support: int
    support_measure: SupportMeasure
    _label_index: Dict[int, Dict[Label, List[VertexId]]] = field(
        default_factory=dict, repr=False
    )
    _frozen_graphs: Dict[int, CSRGraph] = field(default_factory=dict, repr=False)
    _palette: LabelPalette = field(default_factory=LabelPalette, repr=False)

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        support_measure: Optional[SupportMeasure] = None,
        *,
        frozen_views: Optional[Dict[int, CSRGraph]] = None,
        palette: Optional[LabelPalette] = None,
    ) -> None:
        if isinstance(graphs, LabeledGraph):
            graph_list = [graphs]
            default_measure = SupportMeasure.EMBEDDINGS
        else:
            graph_list = list(graphs)
            default_measure = (
                SupportMeasure.EMBEDDINGS
                if len(graph_list) == 1
                else SupportMeasure.TRANSACTIONS
            )
        if not graph_list:
            raise ValueError("MiningContext requires at least one data graph")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self.graphs = graph_list
        self.min_support = min_support
        self.support_measure = support_measure or default_measure
        self._label_index = {}
        # The frozen-view pool and its palette may be injected *by
        # reference* (keyword-only) so every context of one engine shares
        # a single set of CSR views — a view frozen for one (σ, measure)
        # query serves every other query over the same data.  Injected
        # views must have been frozen against content-identical graphs
        # with exactly the injected palette; ``MiningEngine`` is the only
        # in-tree caller and guarantees both.
        self._frozen_graphs = frozen_views if frozen_views is not None else {}
        self._palette = palette if palette is not None else LabelPalette()

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #
    @property
    def is_single_graph(self) -> bool:
        return len(self.graphs) == 1

    def graph(self, index: int = 0) -> LabeledGraph:
        return self.graphs[index]

    def frozen_graph(self, index: int = 0) -> CSRGraph:
        """Immutable CSR view of transaction ``index``, built once and cached.

        The growth engines run every adjacency scan and data BFS against
        this view (see ``docs/DATA_PLANE.md``): array-backed sorted
        neighbour tuples plus interned label palettes beat the mutable
        dict-of-sets on read throughput, and the view is safe to share
        across snapshot forks because it cannot be written.  All
        transactions of one context share one vertex-label palette, so a
        label's code is stable database-wide.  :meth:`apply_delta`
        invalidates the cache; the next access re-freezes the mutated
        graph.

        Examples
        --------
        >>> from repro.graph.labeled_graph import build_graph
        >>> context = MiningContext(
        ...     build_graph({0: "a", 1: "b"}, [(0, 1)]), min_support=1
        ... )
        >>> frozen = context.frozen_graph(0)
        >>> frozen.neighbors(0)
        (1,)
        >>> context.frozen_graph(0) is frozen  # cached
        True
        """
        frozen = self._frozen_graphs.get(index)
        if frozen is None:
            frozen = CSRGraph.from_labeled(self.graphs[index], palette=self._palette)
            self._frozen_graphs[index] = frozen
        return frozen

    def graph_indices(self) -> range:
        return range(len(self.graphs))

    def vertices_with_label(self, graph_index: int, label: Label) -> List[VertexId]:
        """All vertices of one transaction carrying ``label`` (cached)."""
        index = self._label_index.get(graph_index)
        if index is None:
            index = {}
            graph = self.graphs[graph_index]
            for vertex in graph.vertices():
                index.setdefault(graph.label_of(vertex), []).append(vertex)
            self._label_index[graph_index] = index
        return index.get(label, [])

    def frequent_labels(self) -> Set[Label]:
        """Vertex labels whose single-vertex support reaches the threshold."""
        frequent: Set[Label] = set()
        all_labels: Set[Label] = set()
        for graph in self.graphs:
            all_labels |= graph.labels_used()
        for label in all_labels:
            occurrences = [
                (index, vertex)
                for index in self.graph_indices()
                for vertex in self.vertices_with_label(index, label)
            ]
            if self.support_measure is SupportMeasure.TRANSACTIONS:
                support = len({index for index, _ in occurrences})
            else:
                support = len(occurrences)
            if support >= self.min_support:
                frequent.add(label)
        return frequent

    # ------------------------------------------------------------------ #
    # support
    # ------------------------------------------------------------------ #
    def support_of_embeddings(
        self, embeddings: Sequence[Embedding], pattern: Optional[LabeledGraph] = None
    ) -> int:
        """Support of a pattern given its embedding list, per the configured measure."""
        if self.support_measure is SupportMeasure.TRANSACTIONS:
            return len({embedding.graph_index for embedding in embeddings})
        if self.support_measure is SupportMeasure.MNI:
            from repro.graph.embeddings import mni_support

            if pattern is None:
                raise ValueError("MNI support requires the pattern graph")
            return mni_support(pattern, embeddings)
        return len({embedding.image_key() for embedding in embeddings})

    def support_of_table(
        self, table: "EmbeddingTable", pattern: Optional[LabeledGraph] = None
    ) -> int:
        """Support of a pattern from its :class:`EmbeddingTable`, per the measure.

        Delegates to the table's lazily-cached support methods, so repeated
        queries against one table (frequency check, then result reporting)
        never recount.  ``pattern`` is accepted for signature parity with
        :meth:`support_of_embeddings`; the columnar MNI needs no graph.
        """
        if self.support_measure is SupportMeasure.TRANSACTIONS:
            return table.transaction_support()
        if self.support_measure is SupportMeasure.MNI:
            return table.mni_support()
        return table.embedding_support()

    def support_of_occurrences(
        self, occurrences: Iterable[Tuple[int, FrozenSet[VertexId]]]
    ) -> int:
        """Support from raw (graph_index, vertex-image) occurrence keys.

        MNI support cannot be derived from unordered images, so this method
        treats it like embedding support; path-shaped patterns with ordered
        occurrences should use :meth:`support_of_path_occurrences` instead.
        """
        occurrence_list = list(occurrences)
        if self.support_measure is SupportMeasure.TRANSACTIONS:
            return len({index for index, _ in occurrence_list})
        return len(set(occurrence_list))

    def support_of_path_occurrences(
        self,
        occurrences: Iterable[Tuple[int, Tuple[VertexId, ...]]],
        labels: Optional[Tuple[str, ...]] = None,
    ) -> int:
        """Support of a path pattern from ordered (graph_index, vertex tuple) occurrences.

        Handles all three measures; the MNI value is computed position-wise
        over the ordered tuples (each tuple position is one pattern vertex).
        Callers that know the path's label sequence should pass ``labels``:
        when the sequence is palindromic, *both* orientations of every
        occurrence are valid embeddings, and the MNI image sets must include
        the reversed tuples or positions near the ends undercount.
        """
        occurrence_list = list(occurrences)
        if not occurrence_list:
            return 0
        if self.support_measure is SupportMeasure.TRANSACTIONS:
            return len({index for index, _ in occurrence_list})
        if self.support_measure is SupportMeasure.MNI:
            if labels is not None and tuple(labels) == tuple(reversed(labels)):
                occurrence_list = occurrence_list + [
                    (index, tuple(reversed(vertices)))
                    for index, vertices in occurrence_list
                ]
            length = len(occurrence_list[0][1])
            images: List[Set[Tuple[int, VertexId]]] = [set() for _ in range(length)]
            for graph_index, vertices in occurrence_list:
                for position, vertex in enumerate(vertices):
                    images[position].add((graph_index, vertex))
            return min(len(position_images) for position_images in images)
        return len({(index, frozenset(vertices)) for index, vertices in occurrence_list})

    def is_frequent(self, support: int) -> bool:
        return support >= self.min_support

    # ------------------------------------------------------------------ #
    # content identity and incremental edits
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content fingerprint of the data graph(s); keys index-store entries."""
        from repro.graph.io import dataset_fingerprint

        return dataset_fingerprint(self.graphs)

    def apply_delta(self, delta: Union[GraphDelta, Iterable[EdgeDelta]]) -> None:
        """Apply a batch of edge edits to the data in place.

        The whole batch is validated before the first mutation, so a bad
        operation raises with the data untouched.  Derived caches (the
        per-graph label index and the frozen CSR views) are invalidated
        *selectively*: only the transactions the batch writes to are
        dropped, so views of untouched transactions keep serving (an edit
        to one graph of a large database does not re-freeze the rest).
        Index stores keyed by the old fingerprint must be repaired
        separately — see :class:`repro.index.incremental.IndexMaintainer`.
        """
        operations = list(delta)
        validate_delta(self.graphs, operations)
        try:
            for operation in operations:
                apply_edge_delta(self.graphs, operation)
        finally:
            # Even on a part-way failure only graphs named by the batch
            # can have been mutated, so untouched indices stay valid.
            for index in touched_graph_indices(operations):
                self._label_index.pop(index, None)
                self._frozen_graphs.pop(index, None)

    def total_vertices(self) -> int:
        return sum(graph.num_vertices() for graph in self.graphs)

    def total_edges(self) -> int:
        return sum(graph.num_edges() for graph in self.graphs)

    def __repr__(self) -> str:
        return (
            f"<MiningContext graphs={len(self.graphs)} "
            f"sigma={self.min_support} measure={self.support_measure.value}>"
        )
