"""SkinnyMine — the full (l, δ)-SPM miner (Algorithm 1) plus the diameter index.

``SkinnyMine`` wires together the two stages:

* Stage I: :class:`repro.core.diammine.DiamMine` mines every frequent simple
  path of length ``l`` (the canonical diameters / minimal
  constraint-satisfying patterns);
* Stage II: :class:`repro.core.levelgrow.LevelGrower` grows each diameter
  level by level up to δ, preserving the canonical diameter at every step.

The class also exposes the *direct mining* workflow of Figure 2: canonical
diameters for many values of ``l`` can be pre-computed once
(:meth:`SkinnyMine.precompute`) and each subsequent mining request with a
particular ``l`` (or a range ``[l1, l2]``) is answered by growing only the
relevant clusters — no pattern with a different diameter is ever visited.

Runtimes of the two stages and pattern counts are recorded in
:class:`MiningReport` because the paper's scalability figures (14, 16, 17,
18) report exactly that break-down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diameter import is_l_long_delta_skinny
from repro.core.diammine import DiamMine, Stage1Mode
from repro.core.levelgrow import (
    DiameterDescriptorCache,
    LevelGrower,
    LevelGrowStatistics,
)
from repro.core.patterns import (
    GrowthState,
    PathPattern,
    SkinnyPattern,
    initial_state_from_path,
)
from repro.graph.embeddings import row_storage_mode
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass
class MiningReport:
    """Stage-wise accounting of one mining request."""

    length: int
    delta: int
    diammine_seconds: float = 0.0
    levelgrow_seconds: float = 0.0
    num_diameters: int = 0
    num_patterns: int = 0
    # Which EmbeddingTable storage served the request ("array" interned
    # arenas vs "tuple" rows) — recorded so bench ledger entries and bug
    # reports can attest the data-plane configuration they measured.
    row_storage: str = "array"
    level_statistics: LevelGrowStatistics = field(default_factory=LevelGrowStatistics)

    @property
    def total_seconds(self) -> float:
        return self.diammine_seconds + self.levelgrow_seconds


class SkinnyMine:
    """Mine all l-long δ-skinny frequent patterns of a graph or graph database.

    Parameters
    ----------
    graphs:
        A single data graph (single-graph setting) or a sequence of graphs
        (graph-transaction setting).
    min_support:
        The frequency threshold σ.
    support_measure:
        Optional override of the support measure; defaults follow the paper
        (embedding count for a single graph, transaction count for a
        database).
    max_paths_per_length / max_patterns_per_diameter:
        Optional safety caps for exploratory runs on dense data; ``None``
        (default) keeps the algorithm exact.
    stage1_mode:
        Stage-1 exactness contract forwarded to DiamMine
        (:class:`repro.core.diammine.Stage1Mode`); the default ``EXACT``
        mines every frequent diameter under any support measure, ``PRUNED``
        opts back into the paper's literal intermediate thresholding.
    prune_intermediate:
        Deprecated boolean spelling of ``stage1_mode`` (``True`` → pruned,
        ``False`` → exact); an explicit value overrides ``stage1_mode``.
    tracer:
        Optional :class:`repro.obs.Tracer` for standalone (non-engine) use —
        the profiler and benchmarks drive :class:`SkinnyMine` directly.
        When enabled, each request gets ``stage1``/``stage2`` spans,
        per-level ``stage2.level`` spans and aggregate ``stage2.phase.*``
        spans; defaults to the shared no-op tracer.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
    >>> background = erdos_renyi_graph(120, 1.5, 8, seed=1)
    >>> pattern = random_skinny_pattern(6, 1, 9, 8, seed=2)
    >>> _ = inject_pattern(background, pattern, copies=3, seed=3)
    >>> miner = SkinnyMine(background, min_support=3)
    >>> result = miner.mine(length=6, delta=1)
    >>> all(p.diameter_length == 6 for p in result)
    True
    >>> miner.stage1_mode
    <Stage1Mode.EXACT: 'exact'>
    """

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        support_measure: Optional[SupportMeasure] = None,
        max_paths_per_length: Optional[int] = None,
        max_patterns_per_diameter: Optional[int] = None,
        stage1_mode: Union[str, Stage1Mode, None] = None,
        prune_intermediate: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._context = MiningContext(graphs, min_support, support_measure)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._diammine = DiamMine(
            self._context,
            max_paths_per_length=max_paths_per_length,
            mode=stage1_mode,
            prune_intermediate=prune_intermediate,
            tracer=self._tracer,
        )
        self._max_patterns_per_diameter = max_patterns_per_diameter
        self._diameter_index: Dict[int, List[PathPattern]] = {}
        # Shared across clusters and requests: Loop-Invariant verdicts are a
        # function of the abstract pattern, so a candidate generated by
        # several clusters (each cluster containing its diameter proposes
        # it) verifies once (see levelgrow.DiameterDescriptorCache).
        self._descriptor_cache = DiameterDescriptorCache()
        self.last_report: Optional[MiningReport] = None

    # ------------------------------------------------------------------ #
    # direct-mining pre-computation (Figure 2)
    # ------------------------------------------------------------------ #
    @property
    def context(self) -> MiningContext:
        return self._context

    @property
    def stage1_mode(self) -> Stage1Mode:
        """The resolved Stage-1 exactness mode (see :class:`Stage1Mode`)."""
        return self._diammine.mode

    def precompute(self, lengths: Iterable[int]) -> Dict[int, int]:
        """Pre-compute and index canonical diameters for several lengths.

        Returns ``length -> number of frequent diameters`` for reporting.
        Subsequent :meth:`mine` calls with an indexed length skip Stage I.
        """
        counts: Dict[int, int] = {}
        for length in sorted(set(lengths)):
            if length not in self._diameter_index:
                self._diameter_index[length] = self._diammine.mine(length)
            counts[length] = len(self._diameter_index[length])
        return counts

    def indexed_lengths(self) -> List[int]:
        return sorted(self._diameter_index)

    def diameters_for(self, length: int) -> List[PathPattern]:
        """The canonical diameters (frequent length-``l`` paths) for one request."""
        if length not in self._diameter_index:
            self._diameter_index[length] = self._diammine.mine(length)
        return self._diameter_index[length]

    # ------------------------------------------------------------------ #
    # mining
    # ------------------------------------------------------------------ #
    def mine(
        self,
        length: int,
        delta: int,
        include_minimal: bool = True,
        validate: bool = False,
        closed_only: bool = False,
        maximal_only: bool = False,
    ) -> List[SkinnyPattern]:
        """All l-long δ-skinny patterns with support ≥ σ (Algorithm 1).

        ``include_minimal`` keeps the bare canonical diameters in the result
        (they are themselves l-long 0-skinny patterns and hence satisfy the
        δ-skinny constraint); pass False to reproduce Algorithm 1 literally,
        which returns only grown patterns.  ``closed_only`` applies the
        closedness filter of Algorithm 3, line 12: a pattern is reported only
        if it has no frequent constraint-preserving super-pattern of at least
        the same support in its cluster.  ``maximal_only`` is the stricter
        filter (no frequent constraint-preserving super-pattern in its
        cluster at all) used by some of the effectiveness benchmarks.  Both
        are cluster-local: a super-pattern whose canonical diameter differs
        belongs to — and is weighed by — its own cluster.  Super-patterns
        reached through constraint-pending intermediates are credited to
        their nearest reportable ancestor, so the filters see through
        pending repairs.  ``validate`` re-checks every output
        with the reference predicate
        :func:`repro.core.diameter.is_l_long_delta_skinny` — slow, meant for
        tests.
        """
        if length < 1:
            raise ValueError("length must be at least 1")
        if delta < 0:
            raise ValueError("delta must be non-negative")

        report = MiningReport(
            length=length, delta=delta, row_storage=row_storage_mode()
        )
        started = time.perf_counter()
        with self._tracer.span("stage1", length=length) as span:
            diameters = self.diameters_for(length)
            span.annotate(diameters=len(diameters))
        report.diammine_seconds = time.perf_counter() - started
        report.num_diameters = len(diameters)

        results: List[SkinnyPattern] = []
        started = time.perf_counter()
        with self._tracer.span("stage2", length=length, delta=delta) as span:
            for path in diameters:
                # Each cluster merges its LevelGrow statistics into *this*
                # request's report (it used to merge into the previous
                # request's last_report, leaving the counters permanently
                # zeroed).
                cluster_results = self._grow_cluster(
                    path,
                    delta,
                    include_minimal,
                    report=report,
                    closed_only=closed_only,
                    maximal_only=maximal_only,
                )
                results.extend(cluster_results)
            span.annotate(patterns=len(results))
            # The emission phases are accumulated inline per candidate (too
            # hot for a span each); attach them as pre-timed aggregates.
            for phase, seconds in report.level_statistics.phase_seconds().items():
                self._tracer.record("stage2.phase." + phase, seconds)
        report.levelgrow_seconds = time.perf_counter() - started
        report.num_patterns = len(results)
        self.last_report = report

        if validate:
            self._validate(results, length, delta)
        return results

    def mine_range(
        self,
        min_length: int,
        max_length: int,
        delta: int,
        include_minimal: bool = True,
    ) -> Dict[int, List[SkinnyPattern]]:
        """Answer a range request l ∈ [l1, l2] without visiting other diameters.

        This is the query shape the introduction highlights: thanks to the
        partition induced by canonical diameters, patterns with diameters
        outside the range are never generated or examined.
        """
        if min_length > max_length:
            raise ValueError("min_length must not exceed max_length")
        results: Dict[int, List[SkinnyPattern]] = {}
        for length in range(min_length, max_length + 1):
            results[length] = self.mine(length, delta, include_minimal=include_minimal)
        return results

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _grow_cluster(
        self,
        path: PathPattern,
        delta: int,
        include_minimal: bool,
        report: Optional[MiningReport] = None,
        closed_only: bool = False,
        maximal_only: bool = False,
    ) -> List[SkinnyPattern]:
        grower = LevelGrower(
            self._context,
            max_patterns=self._max_patterns_per_diameter,
            descriptor_cache=self._descriptor_cache,
            # The child counters feed only these two filters; with both off
            # the grower's duplicate fast path may skip the re-derivation's
            # embedding join outright.
            child_accounting=closed_only or maximal_only,
        )
        root = initial_state_from_path(path)
        grower.register(root)
        collected: List[tuple[GrowthState, bool]] = [(root, include_minimal)]

        # The frontier carries both reportable states and constraint-pending
        # intermediates (Constraint-I violations a later level's edges can
        # still repair); only the former are ever collected.
        frontier: List[GrowthState] = [root]
        for level in range(1, delta + 1):
            with self._tracer.span("stage2.level", level=level) as span:
                next_frontier: List[GrowthState] = []
                for state in frontier:
                    growth = grower.grow_level_full(state, level, max_level=delta)
                    next_frontier.extend(growth.emitted)
                    next_frontier.extend(growth.pending)
                    collected.extend((grown, True) for grown in growth.emitted)
                span.annotate(frontier=len(frontier), grown=len(next_frontier))
            if not next_frontier:
                break
            frontier = next_frontier
        if report is not None:
            report.level_statistics.merge(grower.statistics)

        cluster: List[SkinnyPattern] = []
        for state, reportable in collected:
            if not reportable:
                continue
            if maximal_only and state.accepted_children > 0:
                continue
            if closed_only and state.equal_support_children > 0:
                continue
            cluster.append(state.to_pattern())
        return cluster

    def _validate(
        self, patterns: Sequence[SkinnyPattern], length: int, delta: int
    ) -> None:
        for pattern in patterns:
            if not is_l_long_delta_skinny(pattern.graph, length, delta):
                raise AssertionError(
                    f"mined pattern violates the l-long δ-skinny constraint: {pattern!r}"
                )
            if pattern.support < self._context.min_support:
                raise AssertionError(
                    f"mined pattern violates the support threshold: {pattern!r}"
                )


def mine_skinny_patterns(
    graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
    length: int,
    delta: int,
    min_support: int,
    **kwargs,
) -> List[SkinnyPattern]:
    """One-shot functional façade over :class:`SkinnyMine`."""
    miner = SkinnyMine(graphs, min_support=min_support, **kwargs)
    return miner.mine(length, delta)
