"""Path orders (Definitions 2 and 3 of the paper).

Two orders are defined on labeled simple paths of a graph:

* the **lexicographical path order** ``<_L`` compares first by length (shorter
  is smaller) and then label sequence element by element (Definition 2);
* the **total path order** ``<`` breaks lexicographic ties by comparing the
  physical vertex-id sequences numerically (Definition 3).

The canonical diameter (Definition 4) is the minimum path under the total
order among all diameter-realising simple paths, so these comparators are the
foundation of everything in :mod:`repro.core.diameter`.

Labels are compared through ``str`` (the paper assumes an arbitrary but fixed
lexicographic order on the label set; stringification gives us one for any
hashable label type used in this code base).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, VertexId


def label_key(label: Label) -> str:
    """Normalise a label for comparison (fixed total order on the label set)."""
    return str(label)


def path_label_sequence(graph: LabeledGraph, path: Sequence[VertexId]) -> Tuple[str, ...]:
    """The comparable label sequence of a path."""
    return tuple(label_key(graph.label_of(vertex)) for vertex in path)


def compare_lexicographic(
    labels_a: Sequence[str], labels_b: Sequence[str]
) -> int:
    """Definition 2: compare two label sequences; -1, 0 or +1.

    A shorter path is smaller than a longer one; equal-length paths are
    compared label by label.  Returns 0 when the sequences are
    lexicographically equal (``=_L``).
    """
    if len(labels_a) != len(labels_b):
        return -1 if len(labels_a) < len(labels_b) else 1
    for left, right in zip(labels_a, labels_b):
        if left != right:
            return -1 if left < right else 1
    return 0


def compare_total(
    labels_a: Sequence[str],
    ids_a: Sequence[VertexId],
    labels_b: Sequence[str],
    ids_b: Sequence[VertexId],
) -> int:
    """Definition 3: total order combining label order and physical-id order."""
    lexicographic = compare_lexicographic(labels_a, labels_b)
    if lexicographic != 0:
        return lexicographic
    for left, right in zip(ids_a, ids_b):
        if left != right:
            return -1 if left < right else 1
    return 0


def path_sort_key(graph: LabeledGraph, path: Sequence[VertexId]) -> Tuple:
    """A sort key realising the total path order for paths of one graph.

    Sorting by this key orders paths exactly as Definition 3: first by
    length, then by label sequence, then by physical vertex-id sequence.
    """
    return (len(path), path_label_sequence(graph, path), tuple(path))


def canonical_orientation(
    graph: LabeledGraph, path: Sequence[VertexId]
) -> List[VertexId]:
    """Return the orientation of ``path`` that is smaller under the total order.

    A simple path read forwards or backwards denotes the same subgraph; the
    canonical diameter definition implicitly picks the smaller of the two
    sequences, so most call-sites normalise a path with this helper first.
    """
    forward = list(path)
    backward = list(reversed(path))
    if compare_total(
        path_label_sequence(graph, forward),
        forward,
        path_label_sequence(graph, backward),
        backward,
    ) <= 0:
        return forward
    return backward


def canonical_label_orientation(labels: Sequence[str]) -> Tuple[str, ...]:
    """Canonical (smaller) orientation of a bare label sequence.

    Used by DiamMine, which manipulates label sequences before any pattern
    graph exists; ties (palindromes) keep the forward orientation.
    """
    forward = tuple(labels)
    backward = tuple(reversed(labels))
    return forward if forward <= backward else backward


def smallest_path(
    graph: LabeledGraph, paths: Sequence[Sequence[VertexId]]
) -> List[VertexId]:
    """The minimum path among ``paths`` (both orientations considered)."""
    if not paths:
        raise ValueError("smallest_path requires at least one path")
    oriented = [canonical_orientation(graph, path) for path in paths]
    return min(oriented, key=lambda path: path_sort_key(graph, path))
