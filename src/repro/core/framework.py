"""The general direct mining framework (Section 5 of the paper).

The paper abstracts SkinnyMine into a two-stage recipe applicable to any
graph constraint that is *reducible* and *continuous*:

1. **Minimal constraint-satisfying pattern generation** — mine (often
   off-line) the minimal patterns that satisfy the constraint and index their
   embeddings.
2. **Constraint-preserving pattern growth** — on a mining request, fetch the
   relevant minimal patterns and grow each while preserving the constraint.

This module provides:

* :class:`GraphConstraint` — the protocol a constraint must implement
  (satisfaction test, minimal-pattern miner, constraint-preserving grower);
* :func:`check_reducibility` / :func:`check_continuity` — Property 1 and 2 of
  the paper, decidable on an explicit finite pattern universe.  They are used
  in tests to show the skinny constraint qualifies while the paper's two
  counter-examples (``MaxDegree ≤ K`` and "all degrees equal") fail the
  respective property;
* :class:`DirectMiner` — the generic two-stage driver, of which SkinnyMine is
  the concrete instance (`SkinnyConstraintDriver` adapts it);
* :class:`MinimalPatternIndex` — the pre-computed index of Figure 2 keyed by
  the constraint parameter (for skinny patterns: the diameter length).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.index.store import PatternStore, StoreKey

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diameter import is_l_long_delta_skinny
from repro.core.patterns import SkinnyPattern
from repro.graph.canonical import canonical_key
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.trace import NULL_TRACER


# --------------------------------------------------------------------- #
# constraint properties (Property 1 and 2)
# --------------------------------------------------------------------- #
ConstraintPredicate = Callable[[LabeledGraph], bool]


def _strict_subpatterns(pattern: LabeledGraph) -> List[LabeledGraph]:
    """All connected subgraphs of ``pattern`` with exactly one edge removed.

    Vertices isolated by the removal are dropped, mirroring the paper's
    pattern containment (patterns are connected subgraphs; |E(P')| =
    |E(P)| - 1).
    """
    subpatterns: List[LabeledGraph] = []
    for edge in pattern.edges():
        candidate = pattern.copy()
        candidate.remove_edge(edge.u, edge.v)
        for vertex in (edge.u, edge.v):
            if candidate.degree(vertex) == 0 and candidate.num_vertices() > 1:
                candidate.remove_vertex(vertex)
        components = candidate.connected_components()
        if len(components) == 1:
            subpatterns.append(candidate)
    return subpatterns


@dataclass
class ReducibilityReport:
    """Outcome of a reducibility check on a finite universe."""

    reducible: bool
    minimal_patterns: List[LabeledGraph]
    threshold_size: Optional[int]


def check_reducibility(
    predicate: ConstraintPredicate,
    universe: Sequence[LabeledGraph],
    min_size: int = 1,
) -> ReducibilityReport:
    """Property 1 (Reducibility) evaluated over an explicit pattern universe.

    A constraint is reducible if there is a non-empty set of satisfying
    patterns of size ≥ ``min_size`` whose strict (one-edge-smaller connected)
    subpatterns all violate the constraint — the minimal
    constraint-satisfying patterns.  The check returns those minimal patterns
    found in ``universe``.
    """
    minimal: List[LabeledGraph] = []
    for pattern in universe:
        if pattern.num_edges() < min_size:
            continue
        if not predicate(pattern):
            continue
        if all(not predicate(sub) for sub in _strict_subpatterns(pattern)):
            minimal.append(pattern)
    if not minimal:
        return ReducibilityReport(False, [], None)
    threshold = min(pattern.num_edges() for pattern in minimal)
    nontrivial = [pattern for pattern in minimal if pattern.num_edges() >= min_size]
    return ReducibilityReport(bool(nontrivial), nontrivial, threshold)


@dataclass
class ContinuityReport:
    """Outcome of a continuity check on a finite universe."""

    continuous: bool
    violating_patterns: List[LabeledGraph]


def check_continuity(
    predicate: ConstraintPredicate,
    universe: Sequence[LabeledGraph],
    minimal_patterns: Optional[Sequence[LabeledGraph]] = None,
) -> ContinuityReport:
    """Property 2 (Continuity) evaluated over an explicit pattern universe.

    Every satisfying pattern must either be minimal (no strict subpattern
    satisfies the constraint — or be designated minimal by the caller) or
    have at least one strict subpattern that also satisfies it.  Patterns
    violating this are returned; an empty violation list means the constraint
    is continuous on the universe.
    """
    minimal_keys = None
    if minimal_patterns is not None:
        minimal_keys = {canonical_key(pattern) for pattern in minimal_patterns}
    violations: List[LabeledGraph] = []
    for pattern in universe:
        if not predicate(pattern):
            continue
        subpatterns = _strict_subpatterns(pattern)
        if any(predicate(sub) for sub in subpatterns):
            continue
        if minimal_keys is not None:
            if canonical_key(pattern) in minimal_keys:
                continue
        else:
            # No designated minimal set: a pattern with no satisfying strict
            # subpattern is its own minimal pattern, which case (1) allows.
            continue
        violations.append(pattern)
    return ContinuityReport(not violations, violations)


# --------------------------------------------------------------------- #
# constraint predicates used in the paper's discussion
# --------------------------------------------------------------------- #
def skinny_constraint(length: int, delta: int) -> ConstraintPredicate:
    """The l-long δ-skinny constraint as a predicate (reducible + continuous)."""

    def predicate(pattern: LabeledGraph) -> bool:
        return is_l_long_delta_skinny(pattern, length, delta)

    return predicate


def max_degree_constraint(maximum: int) -> ConstraintPredicate:
    """The paper's non-reducible example: every vertex degree strictly below ``maximum``."""

    def predicate(pattern: LabeledGraph) -> bool:
        if pattern.num_vertices() == 0:
            return False
        return all(pattern.degree(vertex) < maximum for vertex in pattern.vertices())

    return predicate


def uniform_degree_constraint() -> ConstraintPredicate:
    """The paper's non-continuous example: all vertices share the same degree."""

    def predicate(pattern: LabeledGraph) -> bool:
        degrees = {pattern.degree(vertex) for vertex in pattern.vertices()}
        return pattern.num_vertices() > 0 and len(degrees) == 1

    return predicate


def min_size_constraint(min_edges: int) -> ConstraintPredicate:
    """A simple reducible + continuous constraint (|E(P)| ≥ k) used in examples."""

    def predicate(pattern: LabeledGraph) -> bool:
        return pattern.num_edges() >= min_edges

    return predicate


def path_shape_constraint(length: int) -> ConstraintPredicate:
    """The l-long path constraint: the pattern *is* a simple path of ``length`` edges.

    Reducible (the minimal patterns are exactly the l-paths — every strict
    subpattern is a shorter path) and trivially continuous (every satisfying
    pattern is minimal).  This is the degenerate δ=0 corner of the skinny
    family, served as its own constraint because its Stage 2 is the identity.
    """
    if length < 1:
        raise ValueError("length must be at least 1")

    def predicate(pattern: LabeledGraph) -> bool:
        if pattern.num_edges() != length or pattern.num_vertices() != length + 1:
            return False
        if not pattern.is_connected():
            return False
        degrees = sorted(pattern.degree(vertex) for vertex in pattern.vertices())
        # A connected tree with max degree 2 and two leaves is a simple path.
        return degrees[-1] <= 2 and degrees[0] == 1

    return predicate


def bounded_diameter_constraint(maximum: int) -> ConstraintPredicate:
    """The bounded-diameter constraint diam(P) ≤ K (connected, at least one edge).

    Reducible: single-edge patterns (diameter 1) qualify, and so do the
    odd/even cycles whose every one-edge-deleted subpath exceeds K — the
    reducibility check on an explicit universe surfaces both kinds of
    minimal pattern.  Continuity holds relative to that minimal set: deleting
    a non-cycle pattern's pendant edge keeps the diameter bounded.
    """
    if maximum < 1:
        raise ValueError("maximum diameter must be at least 1")

    def predicate(pattern: LabeledGraph) -> bool:
        from repro.graph.paths import diameter_at_most

        if pattern.num_edges() < 1 or not pattern.is_connected():
            return False
        # SumSweep-style bounded check: confirms or refutes the bound from
        # a few BFS sweeps instead of computing the exact diameter.
        return diameter_at_most(pattern, maximum)

    return predicate


# --------------------------------------------------------------------- #
# the generic two-stage driver
# --------------------------------------------------------------------- #
class ConstraintDriver(Protocol):
    """What a constraint must provide to plug into :class:`DirectMiner`.

    ``mine_minimal(context, parameter)`` returns the minimal
    constraint-satisfying patterns for one value of the constraint parameter
    (e.g. the diameter length for skinny patterns);
    ``grow(context, minimal, parameter)`` grows one minimal pattern into all
    target patterns of its cluster.
    """

    def mine_minimal(self, context: MiningContext, parameter: Hashable) -> List[object]:
        ...

    def grow(
        self, context: MiningContext, minimal: object, parameter: Hashable
    ) -> List[SkinnyPattern]:
        ...


class MinimalPatternIndex:
    """The pre-computed index of minimal patterns keyed by constraint parameter.

    Historically a plain in-memory dict; it is now a parameter-keyed view
    over a pluggable :class:`repro.index.store.PatternStore` backend bound to
    one ``(dataset fingerprint, constraint id)`` pair.  The default backend
    is :class:`repro.index.store.MemoryPatternStore` (the old behaviour);
    passing a :class:`repro.index.store.DiskPatternStore` makes the Stage-1
    index survive the process — see :mod:`repro.service.mining` for the
    request-serving front end built on top.
    """

    def __init__(
        self,
        backend: Optional["PatternStore"] = None,
        fingerprint: str = "",
        constraint_id: str = "generic",
    ) -> None:
        from repro.index.store import MemoryPatternStore

        self._backend = backend if backend is not None else MemoryPatternStore()
        self._fingerprint = fingerprint
        self._constraint_id = constraint_id
        # Parameters the portable codec cannot express (e.g. frozensets,
        # custom hashables) are keyed through these two maps, preserving the
        # historical any-Hashable API for in-process use.  The forward map is
        # looked up by equality/hash, so two equal-but-distinct instances
        # (whose reprs may differ, e.g. default object reprs) share one key.
        # Caveat: these identities are in-process only — sharing unportable
        # parameters across processes via a disk backend relies on repr being
        # faithful (distinct parameters with identical reprs cannot be told
        # apart by a reader that never saw the originals); use portable
        # scalar/tuple/dict parameters for cross-process stores.
        self._unportable_encoding: Dict[Hashable, str] = {}
        self._unportable: Dict[str, Hashable] = {}

    @property
    def backend(self) -> "PatternStore":
        return self._backend

    def _key(self, parameter: Hashable) -> "StoreKey":
        import json

        from repro.index.store import StoreKey, encode_parameter

        try:
            encoded = encode_parameter(parameter)
        except TypeError:
            import warnings

            warnings.warn(
                "keying a MinimalPatternIndex by an unportable (repr-encoded) "
                "parameter is deprecated; use scalar/tuple/dict parameters or "
                "the Query API (repro.api) so entries stay portable across "
                "processes",
                DeprecationWarning,
                stacklevel=3,
            )
            encoded = self._unportable_encoding.get(parameter)
            if encoded is None:
                encoded = json.dumps(
                    {"__unportable__": repr(parameter)},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                if encoded in self._unportable:
                    # Distinct parameters sharing a repr: disambiguate.
                    encoded = json.dumps(
                        {
                            "__unportable__": repr(parameter),
                            "__seq__": len(self._unportable),
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                self._unportable_encoding[parameter] = encoded
                self._unportable[encoded] = parameter
        return StoreKey(self._fingerprint, self._constraint_id, encoded)

    def _parameter_of(self, key: "StoreKey") -> Hashable:
        if key.parameter in self._unportable:
            return self._unportable[key.parameter]
        decoded = key.decoded_parameter()
        if isinstance(decoded, dict):
            if "__unportable__" in decoded and set(decoded) <= {"__unportable__", "__seq__"}:
                # Written by another instance/process: the original object is
                # unrecoverable; surface its repr (hashable) instead of a dict.
                return decoded["__unportable__"]
            # Portable dict parameters (e.g. the mining service's) are not
            # hashable either; expose their canonical text form as the key.
            return key.parameter
        return decoded

    def _own_keys(self) -> List["StoreKey"]:
        return [
            key
            for key in self._backend.keys()
            if key.fingerprint == self._fingerprint
            and key.constraint_id == self._constraint_id
        ]

    def store(self, parameter: Hashable, patterns: List[object], seconds: float) -> None:
        from repro.index.store import IndexEntry

        self._backend.put(
            IndexEntry(key=self._key(parameter), patterns=list(patterns), build_seconds=seconds)
        )

    def get(self, parameter: Hashable) -> Optional[List[object]]:
        entry = self._backend.get(self._key(parameter))
        return None if entry is None else entry.patterns

    def build_seconds_for(self, parameter: Hashable) -> float:
        entry = self._backend.get(self._key(parameter))
        return 0.0 if entry is None else entry.build_seconds

    @property
    def entries(self) -> Mapping[Hashable, List[object]]:
        """Read-only view: parameter → patterns for this index's entries.

        Formerly a mutable dict field; writes must now go through
        :meth:`store` (mutating this view raises ``TypeError``).
        """
        result: Dict[Hashable, List[object]] = {}
        for key in self._own_keys():
            entry = self._backend.get(key)
            if entry is not None:
                result[self._parameter_of(key)] = entry.patterns
        return MappingProxyType(result)

    @property
    def build_seconds(self) -> Mapping[Hashable, float]:
        """Read-only view: parameter → Stage-1 build time."""
        result: Dict[Hashable, float] = {}
        for key in self._own_keys():
            entry = self._backend.get(key)
            if entry is not None:
                result[self._parameter_of(key)] = entry.build_seconds
        return MappingProxyType(result)

    def parameters(self) -> List[Hashable]:
        return sorted((self._parameter_of(key) for key in self._own_keys()), key=str)

    def __len__(self) -> int:
        return len(self._own_keys())


@dataclass
class DirectMiningReport:
    """Stage break-down for a generic direct-mining request."""

    parameter: Hashable
    stage_one_seconds: float
    stage_two_seconds: float
    num_minimal_patterns: int
    num_patterns: int
    served_from_index: bool


class DirectMiner:
    """Generic two-stage direct miner (Figure 2)."""

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        driver: ConstraintDriver,
        support_measure: Optional[SupportMeasure] = None,
        store: Optional["PatternStore"] = None,
        constraint_id: str = "generic",
    ) -> None:
        self._context = MiningContext(graphs, min_support, support_measure)
        self._driver = driver
        self._index = MinimalPatternIndex(
            backend=store,
            fingerprint=self._context.fingerprint(),
            constraint_id=constraint_id,
        )
        self.last_report: Optional[DirectMiningReport] = None

    @property
    def index(self) -> MinimalPatternIndex:
        return self._index

    def precompute(self, parameters: Iterable[Hashable]) -> MinimalPatternIndex:
        """Stage 1 for a batch of parameters; results go into the index."""
        for parameter in parameters:
            if self._index.get(parameter) is not None:
                continue
            started = time.perf_counter()
            minimal = self._driver.mine_minimal(self._context, parameter)
            self._index.store(parameter, minimal, time.perf_counter() - started)
        return self._index

    def mine(self, parameter: Hashable) -> List[SkinnyPattern]:
        """Serve one mining request: fetch (or compute) minimal patterns, grow each."""
        served_from_index = self._index.get(parameter) is not None
        started = time.perf_counter()
        if not served_from_index:
            self.precompute([parameter])
        minimal_patterns = self._index.get(parameter) or []
        stage_one_seconds = (
            self._index.build_seconds_for(parameter)
            if served_from_index
            else time.perf_counter() - started
        )

        started = time.perf_counter()
        results: List[SkinnyPattern] = []
        for minimal in minimal_patterns:
            results.extend(self._driver.grow(self._context, minimal, parameter))
        stage_two_seconds = time.perf_counter() - started

        self.last_report = DirectMiningReport(
            parameter=parameter,
            stage_one_seconds=stage_one_seconds,
            stage_two_seconds=stage_two_seconds,
            num_minimal_patterns=len(minimal_patterns),
            num_patterns=len(results),
            served_from_index=served_from_index,
        )
        return results


class SkinnyConstraintDriver:
    """Adapter plugging SkinnyMine's two stages into :class:`DirectMiner`.

    The constraint parameter is the pair ``(length, delta)``; minimal patterns
    are the frequent length-``l`` paths, mined under the Stage-1 exactness
    mode (:class:`repro.core.diammine.Stage1Mode`; exact by default).

    The engine builds one driver per query, so the driver instance is the
    per-request scope: ``statistics`` accumulates the LevelGrow counters
    (including the emission-fast-path ones — ``canonical_incremental_hits``,
    ``invariant_cache_hits``, ``probes_batched``) across every cluster of
    the request.  ``descriptor_cache`` defaults to a fresh per-driver cache
    shared across the request's clusters; long-lived callers (the engine)
    inject their own instance so Loop-Invariant descriptors survive across
    requests — sound, because a descriptor is a pure function of the
    abstract pattern, independent of the data, threshold or measure.
    """

    def __init__(
        self,
        max_paths_per_length: Optional[int] = None,
        max_patterns_per_diameter: Optional[int] = None,
        include_minimal: bool = True,
        stage1_mode: Optional[object] = None,
    ) -> None:
        from repro.core.levelgrow import DiameterDescriptorCache, LevelGrowStatistics

        self._max_paths_per_length = max_paths_per_length
        self._max_patterns_per_diameter = max_patterns_per_diameter
        self._include_minimal = include_minimal
        self._stage1_mode = stage1_mode
        self.descriptor_cache = DiameterDescriptorCache()
        self.statistics = LevelGrowStatistics()
        # Injected by the engine (hasattr protocol, like descriptor_cache);
        # defaults to the shared no-op tracer.
        self.tracer = NULL_TRACER

    def mine_minimal(
        self, context: MiningContext, parameter: Tuple[int, int]
    ) -> List[object]:
        from repro.core.diammine import DiamMine

        length, _ = parameter
        return DiamMine(
            context,
            max_paths_per_length=self._max_paths_per_length,
            mode=self._stage1_mode,
            tracer=self.tracer,
        ).mine(length)

    def grow(
        self, context: MiningContext, minimal: object, parameter: Tuple[int, int]
    ) -> List[SkinnyPattern]:
        from repro.core.levelgrow import LevelGrower
        from repro.core.patterns import initial_state_from_path

        _, delta = parameter
        grower = LevelGrower(
            context,
            max_patterns=self._max_patterns_per_diameter,
            descriptor_cache=self.descriptor_cache,
        )
        root = initial_state_from_path(minimal)
        grower.register(root)
        results: List[SkinnyPattern] = []
        if self._include_minimal:
            results.append(root.to_pattern())
        # Constraint-pending intermediates ride the frontier (a later level
        # can repair them) but are never reported — mirrors SkinnyMine.
        frontier = [root]
        for level in range(1, delta + 1):
            with self.tracer.span("stage2.level", level=level) as span:
                next_frontier = []
                for state in frontier:
                    growth = grower.grow_level_full(state, level, max_level=delta)
                    next_frontier.extend(growth.emitted)
                    next_frontier.extend(growth.pending)
                    results.extend(grown.to_pattern() for grown in growth.emitted)
                span.annotate(frontier=len(frontier), grown=len(next_frontier))
            if not next_frontier:
                break
            frontier = next_frontier
        self.statistics.merge(grower.statistics)
        return results


class PathConstraintDriver:
    """Driver for the l-long path constraint (``path_shape_constraint``).

    The constraint parameter is the path length ``l``.  Minimal patterns are
    the frequent length-``l`` paths (DiamMine — exactly Stage 1 of
    SkinnyMine), and because every strict super-pattern of a path is not a
    path, Stage 2 is the identity: each minimal pattern is its own cluster's
    only member.
    """

    def __init__(
        self,
        max_paths_per_length: Optional[int] = None,
        include_minimal: bool = True,
        stage1_mode: Optional[object] = None,
    ) -> None:
        self._max_paths_per_length = max_paths_per_length
        self._include_minimal = include_minimal
        self._stage1_mode = stage1_mode
        self.tracer = NULL_TRACER

    def mine_minimal(self, context: MiningContext, parameter: int) -> List[object]:
        from repro.core.diammine import DiamMine

        return DiamMine(
            context,
            max_paths_per_length=self._max_paths_per_length,
            mode=self._stage1_mode,
            tracer=self.tracer,
        ).mine(int(parameter))

    def grow(
        self, context: MiningContext, minimal: object, parameter: int
    ) -> List[SkinnyPattern]:
        from repro.core.patterns import initial_state_from_path

        if not self._include_minimal:
            return []
        return [initial_state_from_path(minimal).to_pattern()]


class BoundedDiameterDriver:
    """Driver for the bounded-diameter constraint diam(P) ≤ K.

    The constraint parameter is the bound ``K``.  Minimal patterns are the
    frequent single-edge patterns (diameter 1 — the size-1 minimal
    constraint-satisfying patterns); Stage 2 grows each by
    embedding-joined extensions (attach a data neighbour as a new pattern
    vertex, or close an edge between two mapped vertices), keeping only
    frequent extensions whose diameter stays within the bound.

    Cycle-shaped patterns whose every one-edge-deleted sub-pattern violates
    the bound (e.g. a 2K-cycle, or the 4-cycle under K = 2, reachable only
    through a diameter-3 path) are reached through *pending* intermediates:
    growth keeps extending frequent patterns whose diameter exceeds the
    bound by a repairable margin (at most 2K — the best single-edge repair,
    closing a path of length D into a cycle, needs D ≤ 2K) but reports only
    patterns within the bound.  This mirrors LevelGrow's Constraint-I
    pending states (see ``docs/CORRECTNESS.md``).

    Remaining caveat, documented rather than hidden: embedding-count support
    is not anti-monotone, so frequency pruning of intermediates is heuristic
    under that measure — the same trade Stage 2 of SkinnyMine makes.
    Clusters grown from different seed edges can overlap; the engine
    deduplicates by canonical form.
    """

    def __init__(
        self,
        max_edges: Optional[int] = None,
        max_patterns: Optional[int] = None,
        include_minimal: bool = True,
    ) -> None:
        self._max_edges = max_edges
        self._max_patterns = max_patterns
        self._include_minimal = include_minimal

    # ------------------------------------------------------------------ #
    # Stage 1: frequent single-edge patterns
    # ------------------------------------------------------------------ #
    def mine_minimal(self, context: MiningContext, parameter: Hashable) -> List[object]:
        from repro.graph.embeddings import Embedding

        by_shape: Dict[Tuple[str, str, str], List] = {}
        labels_of: Dict[Tuple[str, str, str], Tuple[object, object, object]] = {}
        for graph_index in context.graph_indices():
            graph = context.graph(graph_index)
            for edge in graph.edges():
                label_u = graph.label_of(edge.u)
                label_v = graph.label_of(edge.v)
                orientations = []
                if str(label_u) <= str(label_v):
                    orientations.append((label_u, label_v, edge.u, edge.v))
                if str(label_v) <= str(label_u):
                    orientations.append((label_v, label_u, edge.v, edge.u))
                for first, second, u, v in orientations:
                    shape = (str(first), str(second), str(edge.label))
                    labels_of.setdefault(shape, (first, second, edge.label))
                    by_shape.setdefault(shape, []).append(
                        Embedding.from_dict({0: u, 1: v}, graph_index)
                    )
        minimal: List[object] = []
        for shape in sorted(by_shape):
            first, second, edge_label = labels_of[shape]
            pattern = LabeledGraph(name=f"edge-{shape[0]}-{shape[1]}")
            pattern.add_vertex(0, first)
            pattern.add_vertex(1, second)
            pattern.add_edge(0, 1, edge_label)
            embeddings = by_shape[shape]
            support = context.support_of_embeddings(embeddings, pattern)
            if context.is_frequent(support):
                minimal.append(SkinnyPattern(pattern, [0, 1], embeddings, support))
        return minimal

    # ------------------------------------------------------------------ #
    # Stage 2: constraint-preserving growth
    # ------------------------------------------------------------------ #
    def _extensions(self, context, graph, table):
        """Pattern-level extension ops joined across the embedding table.

        Yields ``(new_graph, new_table)`` pairs for every distinct one-edge
        extension supported by at least one row: either a new pendant
        pattern vertex mapped to an unused data neighbour, or a closing edge
        between two already-mapped pattern vertices.  Each op's join —
        ``(row, data vertex)`` pairs or surviving row indices — is recorded
        during the single adjacency scan, so applying an op is a pure join
        against the parent table rather than a re-scan.
        """
        pattern_edges = {frozenset(edge.endpoints()) for edge in graph.edges()}
        columns = table.columns
        new_vertex_ops: Dict[Tuple, List[Tuple[int, int]]] = {}
        new_vertex_labels: Dict[Tuple, Tuple[object, object]] = {}
        close_edge_ops: Dict[Tuple, List[int]] = {}
        close_edge_labels: Dict[Tuple, object] = {}
        last_graph_index = -1
        data = None
        for row_index, (graph_index, row) in enumerate(
            zip(table.graph_ids, table.rows)
        ):
            # Frozen CSR view: sorted-tuple neighbour reads, cached label
            # strings and O(log deg) edge-label probes, shared across every
            # row of the transaction (rows arrive grouped by graph).
            if graph_index != last_graph_index:
                data = context.frozen_graph(graph_index)
                label_strs = data.label_strs
                adjacency = data.adjacency
                last_graph_index = graph_index
            # Embeddings are injective: data vertex → pattern vertex is
            # well defined per row, so one inverse map answers both the
            # membership probe and the closing-edge endpoint recovery.
            mapped_get = dict(zip(row, columns)).get
            for position, pattern_vertex in enumerate(columns):
                data_vertex = row[position]
                for neighbor in adjacency[data_vertex]:
                    edge_label = data.edge_label(data_vertex, neighbor)
                    mapped = mapped_get(neighbor)
                    if mapped is not None:
                        if (
                            pattern_vertex < mapped
                            and frozenset((pattern_vertex, mapped)) not in pattern_edges
                        ):
                            op = (pattern_vertex, mapped, str(edge_label))
                            close_edge_labels.setdefault(op, edge_label)
                            close_edge_ops.setdefault(op, []).append(row_index)
                    else:
                        op = (pattern_vertex, label_strs[neighbor], str(edge_label))
                        if op not in new_vertex_labels:
                            new_vertex_labels[op] = (data.label_of(neighbor), edge_label)
                        new_vertex_ops.setdefault(op, []).append((row_index, neighbor))

        new_id = max(graph.vertices()) + 1
        for op in sorted(new_vertex_ops):
            anchor = op[0]
            label, edge_label = new_vertex_labels[op]
            extended = graph.copy()
            extended.add_vertex(new_id, label)
            extended.add_edge(anchor, new_id, edge_label)
            yield extended, table.extended(new_id, new_vertex_ops[op])
        for op in sorted(close_edge_ops):
            u, v = op[0], op[1]
            extended = graph.copy()
            extended.add_edge(u, v, close_edge_labels[op])
            yield extended, table.subset(close_edge_ops[op])

    def grow(
        self, context: MiningContext, minimal: object, parameter: Hashable
    ) -> List[SkinnyPattern]:
        from repro.core.diameter import canonical_diameter
        from repro.graph.embeddings import EmbeddingTable
        from repro.graph.paths import diameter_at_most

        bound = int(parameter)
        results: List[SkinnyPattern] = []
        seen = {canonical_key(minimal.graph)}
        if self._include_minimal:
            results.append(minimal)
            if self._max_patterns is not None and len(results) >= self._max_patterns:
                return results
        frontier = [
            (minimal.graph, EmbeddingTable.from_embeddings(minimal.embeddings))
        ]
        while frontier:
            graph, table = frontier.pop()
            if self._max_edges is not None and graph.num_edges() >= self._max_edges:
                continue
            for extended, extended_table in self._extensions(context, graph, table):
                key = canonical_key(extended)
                if key in seen:
                    continue
                seen.add(key)
                support = context.support_of_table(extended_table, extended)
                if not context.is_frequent(support):
                    continue
                if not diameter_at_most(extended, bound):
                    # Pending intermediate: over the bound but repairable —
                    # closing a path of length D needs D <= 2K, so anything
                    # beyond that margin can never come back under it.  Both
                    # gates run as SumSweep-bounded checks, which settle from
                    # a few BFS sweeps without the exact diameter.
                    if diameter_at_most(extended, 2 * bound):
                        frontier.append((extended, extended_table))
                    continue
                results.append(
                    SkinnyPattern(
                        extended,
                        canonical_diameter(extended),
                        extended_table.to_embeddings(),
                        support,
                    )
                )
                frontier.append((extended, extended_table))
                if self._max_patterns is not None and len(results) >= self._max_patterns:
                    return results
        return results
