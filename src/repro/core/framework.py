"""The general direct mining framework (Section 5 of the paper).

The paper abstracts SkinnyMine into a two-stage recipe applicable to any
graph constraint that is *reducible* and *continuous*:

1. **Minimal constraint-satisfying pattern generation** — mine (often
   off-line) the minimal patterns that satisfy the constraint and index their
   embeddings.
2. **Constraint-preserving pattern growth** — on a mining request, fetch the
   relevant minimal patterns and grow each while preserving the constraint.

This module provides:

* :class:`GraphConstraint` — the protocol a constraint must implement
  (satisfaction test, minimal-pattern miner, constraint-preserving grower);
* :func:`check_reducibility` / :func:`check_continuity` — Property 1 and 2 of
  the paper, decidable on an explicit finite pattern universe.  They are used
  in tests to show the skinny constraint qualifies while the paper's two
  counter-examples (``MaxDegree ≤ K`` and "all degrees equal") fail the
  respective property;
* :class:`DirectMiner` — the generic two-stage driver, of which SkinnyMine is
  the concrete instance (`SkinnyConstraintDriver` adapts it);
* :class:`MinimalPatternIndex` — the pre-computed index of Figure 2 keyed by
  the constraint parameter (for skinny patterns: the diameter length).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.index.store import PatternStore, StoreKey

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diameter import is_l_long_delta_skinny
from repro.core.patterns import SkinnyPattern
from repro.graph.canonical import canonical_key
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import LabeledGraph


# --------------------------------------------------------------------- #
# constraint properties (Property 1 and 2)
# --------------------------------------------------------------------- #
ConstraintPredicate = Callable[[LabeledGraph], bool]


def _strict_subpatterns(pattern: LabeledGraph) -> List[LabeledGraph]:
    """All connected subgraphs of ``pattern`` with exactly one edge removed.

    Vertices isolated by the removal are dropped, mirroring the paper's
    pattern containment (patterns are connected subgraphs; |E(P')| =
    |E(P)| - 1).
    """
    subpatterns: List[LabeledGraph] = []
    for edge in pattern.edges():
        candidate = pattern.copy()
        candidate.remove_edge(edge.u, edge.v)
        for vertex in (edge.u, edge.v):
            if candidate.degree(vertex) == 0 and candidate.num_vertices() > 1:
                candidate.remove_vertex(vertex)
        components = candidate.connected_components()
        if len(components) == 1:
            subpatterns.append(candidate)
    return subpatterns


@dataclass
class ReducibilityReport:
    """Outcome of a reducibility check on a finite universe."""

    reducible: bool
    minimal_patterns: List[LabeledGraph]
    threshold_size: Optional[int]


def check_reducibility(
    predicate: ConstraintPredicate,
    universe: Sequence[LabeledGraph],
    min_size: int = 1,
) -> ReducibilityReport:
    """Property 1 (Reducibility) evaluated over an explicit pattern universe.

    A constraint is reducible if there is a non-empty set of satisfying
    patterns of size ≥ ``min_size`` whose strict (one-edge-smaller connected)
    subpatterns all violate the constraint — the minimal
    constraint-satisfying patterns.  The check returns those minimal patterns
    found in ``universe``.
    """
    minimal: List[LabeledGraph] = []
    for pattern in universe:
        if pattern.num_edges() < min_size:
            continue
        if not predicate(pattern):
            continue
        if all(not predicate(sub) for sub in _strict_subpatterns(pattern)):
            minimal.append(pattern)
    if not minimal:
        return ReducibilityReport(False, [], None)
    threshold = min(pattern.num_edges() for pattern in minimal)
    nontrivial = [pattern for pattern in minimal if pattern.num_edges() >= min_size]
    return ReducibilityReport(bool(nontrivial), nontrivial, threshold)


@dataclass
class ContinuityReport:
    """Outcome of a continuity check on a finite universe."""

    continuous: bool
    violating_patterns: List[LabeledGraph]


def check_continuity(
    predicate: ConstraintPredicate,
    universe: Sequence[LabeledGraph],
    minimal_patterns: Optional[Sequence[LabeledGraph]] = None,
) -> ContinuityReport:
    """Property 2 (Continuity) evaluated over an explicit pattern universe.

    Every satisfying pattern must either be minimal (no strict subpattern
    satisfies the constraint — or be designated minimal by the caller) or
    have at least one strict subpattern that also satisfies it.  Patterns
    violating this are returned; an empty violation list means the constraint
    is continuous on the universe.
    """
    minimal_keys = None
    if minimal_patterns is not None:
        minimal_keys = {canonical_key(pattern) for pattern in minimal_patterns}
    violations: List[LabeledGraph] = []
    for pattern in universe:
        if not predicate(pattern):
            continue
        subpatterns = _strict_subpatterns(pattern)
        if any(predicate(sub) for sub in subpatterns):
            continue
        if minimal_keys is not None:
            if canonical_key(pattern) in minimal_keys:
                continue
        else:
            # No designated minimal set: a pattern with no satisfying strict
            # subpattern is its own minimal pattern, which case (1) allows.
            continue
        violations.append(pattern)
    return ContinuityReport(not violations, violations)


# --------------------------------------------------------------------- #
# constraint predicates used in the paper's discussion
# --------------------------------------------------------------------- #
def skinny_constraint(length: int, delta: int) -> ConstraintPredicate:
    """The l-long δ-skinny constraint as a predicate (reducible + continuous)."""

    def predicate(pattern: LabeledGraph) -> bool:
        return is_l_long_delta_skinny(pattern, length, delta)

    return predicate


def max_degree_constraint(maximum: int) -> ConstraintPredicate:
    """The paper's non-reducible example: every vertex degree strictly below ``maximum``."""

    def predicate(pattern: LabeledGraph) -> bool:
        if pattern.num_vertices() == 0:
            return False
        return all(pattern.degree(vertex) < maximum for vertex in pattern.vertices())

    return predicate


def uniform_degree_constraint() -> ConstraintPredicate:
    """The paper's non-continuous example: all vertices share the same degree."""

    def predicate(pattern: LabeledGraph) -> bool:
        degrees = {pattern.degree(vertex) for vertex in pattern.vertices()}
        return pattern.num_vertices() > 0 and len(degrees) == 1

    return predicate


def min_size_constraint(min_edges: int) -> ConstraintPredicate:
    """A simple reducible + continuous constraint (|E(P)| ≥ k) used in examples."""

    def predicate(pattern: LabeledGraph) -> bool:
        return pattern.num_edges() >= min_edges

    return predicate


# --------------------------------------------------------------------- #
# the generic two-stage driver
# --------------------------------------------------------------------- #
class ConstraintDriver(Protocol):
    """What a constraint must provide to plug into :class:`DirectMiner`.

    ``mine_minimal(context, parameter)`` returns the minimal
    constraint-satisfying patterns for one value of the constraint parameter
    (e.g. the diameter length for skinny patterns);
    ``grow(context, minimal, parameter)`` grows one minimal pattern into all
    target patterns of its cluster.
    """

    def mine_minimal(self, context: MiningContext, parameter: Hashable) -> List[object]:
        ...

    def grow(
        self, context: MiningContext, minimal: object, parameter: Hashable
    ) -> List[SkinnyPattern]:
        ...


class MinimalPatternIndex:
    """The pre-computed index of minimal patterns keyed by constraint parameter.

    Historically a plain in-memory dict; it is now a parameter-keyed view
    over a pluggable :class:`repro.index.store.PatternStore` backend bound to
    one ``(dataset fingerprint, constraint id)`` pair.  The default backend
    is :class:`repro.index.store.MemoryPatternStore` (the old behaviour);
    passing a :class:`repro.index.store.DiskPatternStore` makes the Stage-1
    index survive the process — see :mod:`repro.service.mining` for the
    request-serving front end built on top.
    """

    def __init__(
        self,
        backend: Optional["PatternStore"] = None,
        fingerprint: str = "",
        constraint_id: str = "generic",
    ) -> None:
        from repro.index.store import MemoryPatternStore

        self._backend = backend if backend is not None else MemoryPatternStore()
        self._fingerprint = fingerprint
        self._constraint_id = constraint_id
        # Parameters the portable codec cannot express (e.g. frozensets,
        # custom hashables) are keyed through these two maps, preserving the
        # historical any-Hashable API for in-process use.  The forward map is
        # looked up by equality/hash, so two equal-but-distinct instances
        # (whose reprs may differ, e.g. default object reprs) share one key.
        # Caveat: these identities are in-process only — sharing unportable
        # parameters across processes via a disk backend relies on repr being
        # faithful (distinct parameters with identical reprs cannot be told
        # apart by a reader that never saw the originals); use portable
        # scalar/tuple/dict parameters for cross-process stores.
        self._unportable_encoding: Dict[Hashable, str] = {}
        self._unportable: Dict[str, Hashable] = {}

    @property
    def backend(self) -> "PatternStore":
        return self._backend

    def _key(self, parameter: Hashable) -> "StoreKey":
        import json

        from repro.index.store import StoreKey, encode_parameter

        try:
            encoded = encode_parameter(parameter)
        except TypeError:
            encoded = self._unportable_encoding.get(parameter)
            if encoded is None:
                encoded = json.dumps(
                    {"__unportable__": repr(parameter)},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                if encoded in self._unportable:
                    # Distinct parameters sharing a repr: disambiguate.
                    encoded = json.dumps(
                        {
                            "__unportable__": repr(parameter),
                            "__seq__": len(self._unportable),
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                self._unportable_encoding[parameter] = encoded
                self._unportable[encoded] = parameter
        return StoreKey(self._fingerprint, self._constraint_id, encoded)

    def _parameter_of(self, key: "StoreKey") -> Hashable:
        if key.parameter in self._unportable:
            return self._unportable[key.parameter]
        decoded = key.decoded_parameter()
        if isinstance(decoded, dict):
            if "__unportable__" in decoded and set(decoded) <= {"__unportable__", "__seq__"}:
                # Written by another instance/process: the original object is
                # unrecoverable; surface its repr (hashable) instead of a dict.
                return decoded["__unportable__"]
            # Portable dict parameters (e.g. the mining service's) are not
            # hashable either; expose their canonical text form as the key.
            return key.parameter
        return decoded

    def _own_keys(self) -> List["StoreKey"]:
        return [
            key
            for key in self._backend.keys()
            if key.fingerprint == self._fingerprint
            and key.constraint_id == self._constraint_id
        ]

    def store(self, parameter: Hashable, patterns: List[object], seconds: float) -> None:
        from repro.index.store import IndexEntry

        self._backend.put(
            IndexEntry(key=self._key(parameter), patterns=list(patterns), build_seconds=seconds)
        )

    def get(self, parameter: Hashable) -> Optional[List[object]]:
        entry = self._backend.get(self._key(parameter))
        return None if entry is None else entry.patterns

    def build_seconds_for(self, parameter: Hashable) -> float:
        entry = self._backend.get(self._key(parameter))
        return 0.0 if entry is None else entry.build_seconds

    @property
    def entries(self) -> Mapping[Hashable, List[object]]:
        """Read-only view: parameter → patterns for this index's entries.

        Formerly a mutable dict field; writes must now go through
        :meth:`store` (mutating this view raises ``TypeError``).
        """
        result: Dict[Hashable, List[object]] = {}
        for key in self._own_keys():
            entry = self._backend.get(key)
            if entry is not None:
                result[self._parameter_of(key)] = entry.patterns
        return MappingProxyType(result)

    @property
    def build_seconds(self) -> Mapping[Hashable, float]:
        """Read-only view: parameter → Stage-1 build time."""
        result: Dict[Hashable, float] = {}
        for key in self._own_keys():
            entry = self._backend.get(key)
            if entry is not None:
                result[self._parameter_of(key)] = entry.build_seconds
        return MappingProxyType(result)

    def parameters(self) -> List[Hashable]:
        return sorted((self._parameter_of(key) for key in self._own_keys()), key=str)

    def __len__(self) -> int:
        return len(self._own_keys())


@dataclass
class DirectMiningReport:
    """Stage break-down for a generic direct-mining request."""

    parameter: Hashable
    stage_one_seconds: float
    stage_two_seconds: float
    num_minimal_patterns: int
    num_patterns: int
    served_from_index: bool


class DirectMiner:
    """Generic two-stage direct miner (Figure 2)."""

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        driver: ConstraintDriver,
        support_measure: Optional[SupportMeasure] = None,
        store: Optional["PatternStore"] = None,
        constraint_id: str = "generic",
    ) -> None:
        self._context = MiningContext(graphs, min_support, support_measure)
        self._driver = driver
        self._index = MinimalPatternIndex(
            backend=store,
            fingerprint=self._context.fingerprint(),
            constraint_id=constraint_id,
        )
        self.last_report: Optional[DirectMiningReport] = None

    @property
    def index(self) -> MinimalPatternIndex:
        return self._index

    def precompute(self, parameters: Iterable[Hashable]) -> MinimalPatternIndex:
        """Stage 1 for a batch of parameters; results go into the index."""
        for parameter in parameters:
            if self._index.get(parameter) is not None:
                continue
            started = time.perf_counter()
            minimal = self._driver.mine_minimal(self._context, parameter)
            self._index.store(parameter, minimal, time.perf_counter() - started)
        return self._index

    def mine(self, parameter: Hashable) -> List[SkinnyPattern]:
        """Serve one mining request: fetch (or compute) minimal patterns, grow each."""
        served_from_index = self._index.get(parameter) is not None
        started = time.perf_counter()
        if not served_from_index:
            self.precompute([parameter])
        minimal_patterns = self._index.get(parameter) or []
        stage_one_seconds = (
            self._index.build_seconds_for(parameter)
            if served_from_index
            else time.perf_counter() - started
        )

        started = time.perf_counter()
        results: List[SkinnyPattern] = []
        for minimal in minimal_patterns:
            results.extend(self._driver.grow(self._context, minimal, parameter))
        stage_two_seconds = time.perf_counter() - started

        self.last_report = DirectMiningReport(
            parameter=parameter,
            stage_one_seconds=stage_one_seconds,
            stage_two_seconds=stage_two_seconds,
            num_minimal_patterns=len(minimal_patterns),
            num_patterns=len(results),
            served_from_index=served_from_index,
        )
        return results


class SkinnyConstraintDriver:
    """Adapter plugging SkinnyMine's two stages into :class:`DirectMiner`.

    The constraint parameter is the pair ``(length, delta)``; minimal patterns
    are the frequent length-``l`` paths.
    """

    def __init__(
        self,
        max_paths_per_length: Optional[int] = None,
        max_patterns_per_diameter: Optional[int] = None,
        include_minimal: bool = True,
    ) -> None:
        self._max_paths_per_length = max_paths_per_length
        self._max_patterns_per_diameter = max_patterns_per_diameter
        self._include_minimal = include_minimal

    def mine_minimal(
        self, context: MiningContext, parameter: Tuple[int, int]
    ) -> List[object]:
        from repro.core.diammine import DiamMine

        length, _ = parameter
        return DiamMine(
            context, max_paths_per_length=self._max_paths_per_length
        ).mine(length)

    def grow(
        self, context: MiningContext, minimal: object, parameter: Tuple[int, int]
    ) -> List[SkinnyPattern]:
        from repro.core.levelgrow import LevelGrower
        from repro.core.patterns import initial_state_from_path

        _, delta = parameter
        grower = LevelGrower(context, max_patterns=self._max_patterns_per_diameter)
        root = initial_state_from_path(minimal)
        grower.register(root)
        results: List[SkinnyPattern] = []
        if self._include_minimal:
            results.append(root.to_pattern())
        frontier = [root]
        for level in range(1, delta + 1):
            next_frontier = []
            for state in frontier:
                next_frontier.extend(grower.grow_level(state, level))
            if not next_frontier:
                break
            results.extend(state.to_pattern() for state in next_frontier)
            frontier = next_frontier
        return results
