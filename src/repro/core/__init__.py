"""The paper's contribution: SkinnyMine and the direct mining framework.

Public entry points
-------------------

* :class:`repro.core.skinnymine.SkinnyMine` — mine all l-long δ-skinny
  frequent patterns of a graph or graph database (Algorithm 1).
* :class:`repro.core.diammine.DiamMine` — Stage I on its own: all frequent
  simple paths of a given length (Algorithm 2).
* :class:`repro.core.framework.DirectMiner` — the generic two-stage direct
  mining framework of Section 5, with the reducibility / continuity property
  checks.
* :mod:`repro.core.diameter` — reference implementations of the canonical
  diameter and skinny predicates (Definitions 4–7).
"""

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diameter import (
    canonical_diameter,
    diameter_length,
    is_delta_skinny,
    is_l_long_delta_skinny,
    skinniness,
    vertex_levels,
)
from repro.core.diammine import DiamMine, brute_force_frequent_paths, mine_frequent_paths
from repro.core.framework import (
    BoundedDiameterDriver,
    ContinuityReport,
    DirectMiner,
    DirectMiningReport,
    MinimalPatternIndex,
    PathConstraintDriver,
    ReducibilityReport,
    SkinnyConstraintDriver,
    bounded_diameter_constraint,
    check_continuity,
    check_reducibility,
    max_degree_constraint,
    min_size_constraint,
    path_shape_constraint,
    skinny_constraint,
    uniform_degree_constraint,
)
from repro.core.levelgrow import LevelGrower, LevelGrowStatistics
from repro.core.patterns import GrowthState, PathPattern, SkinnyPattern
from repro.core.reference import enumerate_and_check_spm
from repro.core.skinnymine import MiningReport, SkinnyMine, mine_skinny_patterns

__all__ = [
    "MiningContext",
    "SupportMeasure",
    "canonical_diameter",
    "diameter_length",
    "is_delta_skinny",
    "is_l_long_delta_skinny",
    "skinniness",
    "vertex_levels",
    "DiamMine",
    "brute_force_frequent_paths",
    "mine_frequent_paths",
    "BoundedDiameterDriver",
    "ContinuityReport",
    "DirectMiner",
    "DirectMiningReport",
    "MinimalPatternIndex",
    "PathConstraintDriver",
    "ReducibilityReport",
    "SkinnyConstraintDriver",
    "bounded_diameter_constraint",
    "check_continuity",
    "check_reducibility",
    "max_degree_constraint",
    "min_size_constraint",
    "path_shape_constraint",
    "skinny_constraint",
    "uniform_degree_constraint",
    "LevelGrower",
    "LevelGrowStatistics",
    "GrowthState",
    "PathPattern",
    "SkinnyPattern",
    "enumerate_and_check_spm",
    "MiningReport",
    "SkinnyMine",
    "mine_skinny_patterns",
]
