"""E2 — Figures 4-8: pattern-size distributions of the four miners on GID 1-5.

For each of the five Table-1 settings the paper plots, per miner (SUBDUE,
SEuS, SpiderMine, SkinnyMine), the number of reported patterns at each
pattern size |V|.  The headline observations to reproduce:

* SkinnyMine finds all injected long skinny patterns (the largest sizes);
* SpiderMine finds large patterns but misses the longest/skinniest ones;
* SUBDUE reports small high-frequency substructures;
* SEuS reports mostly very small patterns (|V| <= 3).

Each GID gets its own benchmark so per-setting runtimes are recorded; the
distributions are printed as series (size=count), which is the data behind
the paper's histograms.
"""

from __future__ import annotations

import pytest
from conftest import MIN_SUPPORT, run_once

from repro.analysis.distributions import injected_pattern_recovery, size_distribution
from repro.analysis.reporting import print_figure_series
from repro.baselines import SeusMiner, SpiderMiner, SubdueMiner
from repro.core import SkinnyMine
from repro.graph.paths import diameter

FIGURE_BY_GID = {1: "Figure 4", 2: "Figure 5", 3: "Figure 6", 4: "Figure 7", 5: "Figure 8"}


def _run_all_miners(dataset):
    graph = dataset.graph
    setting = dataset.setting
    target_length = setting.long_pattern_diameter

    skinny = SkinnyMine(graph, min_support=MIN_SUPPORT).mine(
        target_length, delta=2, closed_only=True
    )
    spider = SpiderMiner(
        graph, min_support=MIN_SUPPORT, top_k=10, radius=1, d_max=4, num_seeds=100, seed=11
    ).mine()
    subdue = SubdueMiner(graph, min_support=MIN_SUPPORT, beam_width=4, iterations=6).mine()
    seus = SeusMiner(graph, min_support=MIN_SUPPORT).mine()
    return {"SkinnyMine": skinny, "SpiderMine": spider, "SUBDUE": subdue, "SEuS": seus}


@pytest.mark.parametrize("gid", [1, 2, 3, 4, 5])
def test_pattern_size_distribution(benchmark, gid, gid_datasets):
    dataset = gid_datasets[gid]
    results = run_once(benchmark, _run_all_miners, dataset)

    series = {
        miner: size_distribution(miner, patterns).as_series()
        for miner, patterns in results.items()
    }
    print_figure_series(
        f"{FIGURE_BY_GID[gid]} (GID {gid}): number of patterns per pattern size |V|",
        series,
        note="scaled dataset; long patterns injected at "
        f"diameter {dataset.setting.long_pattern_diameter}",
    )

    recovery = injected_pattern_recovery(
        "SkinnyMine", results["SkinnyMine"], dataset.long_patterns
    )
    print(
        f"  SkinnyMine recovers {len(recovery.recovered)}/"
        f"{len(dataset.long_patterns)} injected long patterns"
    )

    # Shape assertions mirroring the paper's observations.
    skinny_distribution = size_distribution("SkinnyMine", results["SkinnyMine"])
    seus_distribution = size_distribution("SEuS", results["SEuS"])
    subdue_distribution = size_distribution("SUBDUE", results["SUBDUE"])

    # (1) SkinnyMine reaches the injected long patterns.
    assert recovery.recovery_rate >= 0.8
    # (2) SkinnyMine's largest pattern is at least as large as every baseline's.
    largest_long = max(p.num_vertices() for p in dataset.long_patterns)
    assert skinny_distribution.max_size() >= dataset.setting.long_pattern_diameter + 1
    # (3) SEuS stays at very small patterns; SUBDUE stays well below the
    #     injected long pattern size.
    assert seus_distribution.max_size() <= 3
    assert subdue_distribution.max_size() <= largest_long
    # (4) SpiderMine does not recover the full set of longest patterns
    #     (diameter-bounded merging): its patterns' diameters stay below the
    #     injected diameter.
    spider_diameters = [
        diameter(p.graph) for p in results["SpiderMine"] if p.graph.is_connected()
    ]
    if spider_diameters:
        assert max(spider_diameters) <= dataset.setting.long_pattern_diameter
