"""E7 — Figures 14-15: stage-wise scalability of SkinnyMine on larger graphs.

The paper scales the input graph to 300k vertices (deg = 3, f = 80), mines
all frequent l-long δ-skinny patterns with l >= 4 and δ = 3, and reports the
runtime of Stage I (DiamMine) and Stage II (LevelGrow) separately
(Figure 14) together with the number of patterns found (Figure 15).  The
reproduction sweeps smaller graphs; the shape to preserve: both stages grow
roughly linearly with |V| and the pattern count grows with |V| as well.
"""

from __future__ import annotations

from conftest import MIN_SUPPORT, run_once

from repro.analysis.reporting import print_figure_series
from repro.core import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern

NUM_LABELS = 80
SIZES = (300, 600, 900, 1200)
MIN_LENGTH = 4
DELTA = 3


def _build(num_vertices: int):
    graph = erdos_renyi_graph(num_vertices, 3.0, NUM_LABELS, seed=num_vertices)
    copies = max(2, num_vertices // 300)
    planted = random_skinny_pattern(6, 2, 11, NUM_LABELS, seed=num_vertices + 1)
    inject_pattern(graph, planted, copies=copies, seed=num_vertices + 2)
    return graph


def _sweep():
    stage_one, stage_two, pattern_counts = [], [], []
    for size in SIZES:
        graph = _build(size)
        miner = SkinnyMine(graph, min_support=MIN_SUPPORT)
        # "l >= 4": mine every diameter length from 4 upward that has
        # frequent paths, exactly like the paper's request.
        lengths = miner.precompute(range(MIN_LENGTH, 9))
        total_stage_one = 0.0
        total_stage_two = 0.0
        total_patterns = 0
        for length, count in lengths.items():
            if count == 0:
                continue
            patterns = miner.mine(length, DELTA)
            report = miner.last_report
            total_stage_one += report.diammine_seconds
            total_stage_two += report.levelgrow_seconds
            total_patterns += len(patterns)
        stage_one.append((size, total_stage_one))
        stage_two.append((size, total_stage_two))
        pattern_counts.append((size, total_patterns))
    return stage_one, stage_two, pattern_counts


def test_stagewise_scalability(benchmark):
    stage_one, stage_two, pattern_counts = run_once(benchmark, _sweep)
    print_figure_series(
        "Figure 14: stage-wise runtime (seconds) vs |V|",
        {"Stage I: DiamMine": stage_one, "Stage II: LevelGrow": stage_two},
        note=f"l>={MIN_LENGTH}, delta={DELTA}, sigma={MIN_SUPPORT}, deg=3, f={NUM_LABELS}",
    )
    print_figure_series(
        "Figure 15: number of patterns vs |V|",
        {"patterns (l>=4, delta=3)": pattern_counts},
    )
    # Shape: runtimes and pattern counts are non-trivial and do not shrink
    # drastically as the graph grows.
    assert all(seconds >= 0 for _, seconds in stage_one)
    assert pattern_counts[-1][1] >= pattern_counts[0][1] * 0.5
    assert pattern_counts[-1][1] > 0
