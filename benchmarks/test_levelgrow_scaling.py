"""Stage-2 scaling: the ROADMAP blow-up scenario, gated against regression.

The scenario derives from the one ROADMAP.md singled out as the open perf
target: ``erdos_renyi_graph(200, 1.8, 25, seed=1)`` with three injected
copies of an 11-vertex skinny pattern, now mined at ``l=6 δ=1 σ=3`` through
the **default (exact) Stage-1 mode** end to end.  σ moved from 2 to 3 when
exactness became the default: at σ=2 the exact Stage 1 correctly surfaces
the ~470-strong cross-copy diameter family (support-2 paths through pairs of
injected copies whose sub-paths collapse to one image — see
docs/CORRECTNESS.md), which is a different, far larger workload than the
Stage-2 engine benchmark this file exists to gate.  At σ=3 only the
within-copy family survives and the cluster structure matches the historical
scenario.  Stage 1 is milliseconds; Stage 2 grows 15 canonical diameters
into ~20k patterns, which took minutes on the pre-table ``List[Embedding]``
engine and is the workload the
:class:`repro.graph.embeddings.EmbeddingTable` extension-join engine was
built for.

Three things are checked on every run:

* **Output identity** — the mined pattern set (graphs + supports +
  embeddings, order-independent hash) must equal the committed
  ``pattern_set_sha256``.  A perf regression that changes results is a
  correctness bug, not a slowdown.
* **Runtime regression** — the fresh Stage-2 time, normalised by a small
  calibration mine run on the same interpreter (so CI runners of different
  speeds compare apples to apples), must stay within
  ``REGRESSION_BUDGET`` of the committed baseline's normalised time.
* **Phase regression** — the emission fast path (PR 5) splits Stage-2 time
  into canonicalisation / verification / probing phases
  (``LevelGrowStatistics``); each phase's calibration-normalised time is
  gated independently, so a regression inside one phase cannot hide behind
  an improvement elsewhere.  Tiny phases get an absolute noise floor
  (``PHASE_NOISE_FLOOR`` calibration units) so timer jitter cannot trip the
  gate.

``BENCH_levelgrow.json`` (next to this file) is the committed baseline.  To
refresh it after an intentional perf change, run with ``BENCH_UPDATE=1``::

    BENCH_UPDATE=1 pytest benchmarks/test_levelgrow_scaling.py -q

which overwrites the file; commit the result.  The ``pre_table_engine``
block is the historical record of the pre-EmbeddingTable engine on the
capture machine and is carried through refreshes verbatim, as is the
``history`` list — a per-change ledger of normalised times and phase
splits.  Every run (gating or not) also writes the fresh measurement to
``BENCH_levelgrow.latest.json``; on main, CI appends it to the previous
run's artifact history via ``tools/append_bench_history.py``, so the
``bench-json`` artifact accumulates a per-commit record without committing
churn to the repository.

A second scenario (``LARGE_SCENARIO``, PR 8) gates the frozen-CSR data
plane at the paper's data scale: a ~1.2 × 10⁵-edge background graph is
frozen, mined end to end under the pruned Stage-1 mode, and checked for
output identity plus a normalised-runtime budget.  Its record lives in the
``large_graph`` block of the same baseline file.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from conftest import run_once

from repro.core.skinnymine import SkinnyMine
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)

BASELINE_PATH = Path(__file__).parent / "BENCH_levelgrow.json"
LATEST_PATH = Path(__file__).parent / "BENCH_levelgrow.latest.json"
#: Fresh normalised runtime may exceed the committed one by at most 25% —
#: per phase as well as in total.
REGRESSION_BUDGET = 0.25
#: Absolute slack (in calibration units) added to each phase budget: the
#: phases are fractions of a second, where timer noise would otherwise
#: dominate a 25% relative gate.
PHASE_NOISE_FLOOR = 0.5
CALIBRATION_ROUNDS = 3
PHASES = ("canonical", "invariant", "probe")

SCENARIO = {
    "background": {"num_vertices": 200, "avg_degree": 1.8, "num_labels": 25, "seed": 1},
    "planted": {
        "backbone_length": 7,
        "skinniness": 1,
        "num_vertices": 11,
        "num_labels": 25,
        "seed": 2,
    },
    "copies": 3,
    "inject_seed": 3,
    "length": 6,
    "delta": 1,
    "min_support": 3,
}


#: The data-plane scale scenario (PR 8): a background graph in the 10⁵-edge
#: range — the order of magnitude the paper mines in C++ — mined end to end
#: through the frozen-CSR data plane.  Stage 1 is pinned to the *pruned*
#: mode: exact Stage-1 path enumeration is label-sequence-bound and takes
#: minutes at this scale regardless of graph representation (~140s on the
#: capture machine), while the paper's Algorithm-2 thresholding keeps the
#: whole mine interactive (~2s) and still recovers every injected copy.
#: The gate is completion + output identity + a regression budget on the
#: calibration-normalised total, not a micro-timing.
LARGE_SCENARIO = {
    "background": {
        "num_vertices": 60_000,
        "avg_degree": 4.0,
        "num_labels": 400,
        "seed": 11,
    },
    "planted": {
        "backbone_length": 5,
        "skinniness": 1,
        "num_vertices": 8,
        "num_labels": 400,
        "seed": 12,
    },
    "copies": 8,
    "inject_seed": 13,
    "length": 3,
    "delta": 1,
    "min_support": 8,
    "stage1_mode": "pruned",
}
MIN_LARGE_EDGES = 100_000


def build_scenario_graph():
    background = erdos_renyi_graph(**SCENARIO["background"])
    planted = random_skinny_pattern(**SCENARIO["planted"])
    inject_pattern(
        background, planted, copies=SCENARIO["copies"], seed=SCENARIO["inject_seed"]
    )
    return background


def build_large_scenario_graph():
    background = erdos_renyi_graph(**LARGE_SCENARIO["background"])
    planted = random_skinny_pattern(**LARGE_SCENARIO["planted"])
    inject_pattern(
        background,
        planted,
        copies=LARGE_SCENARIO["copies"],
        seed=LARGE_SCENARIO["inject_seed"],
    )
    return background


def pattern_set_sha256(patterns) -> str:
    """Order-independent content hash of a mined pattern list.

    Hashes the raw structure (labels, edges, diameter, support, sorted
    embeddings) instead of canonical forms: minimum DFS codes are
    exponential on twig-heavy patterns, and growth vertex numbering is
    deterministic, so the raw serialisation is both stable and cheap.
    """
    rows = sorted(
        json.dumps(
            {
                "labels": sorted(
                    (v, str(p.graph.label_of(v))) for v in p.graph.vertices()
                ),
                "edges": sorted(e.endpoints() for e in p.graph.edges()),
                "diameter": list(p.diameter),
                "support": p.support,
                "embeddings": sorted(
                    (e.graph_index, e.mapping) for e in p.embeddings
                ),
            },
            sort_keys=True,
            default=list,
        )
        for p in patterns
    )
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


def _calibration_seconds() -> float:
    """Best-of-N runtime of a small fixed mine on this interpreter/machine.

    Used to normalise the scenario runtime across machines: both numbers are
    pure-Python pattern-growth work, so their ratio is (approximately)
    machine-independent while absolute seconds are not.
    """
    graph = erdos_renyi_graph(80, 2.0, 8, seed=3)
    planted = random_skinny_pattern(4, 1, 6, 8, seed=4)
    inject_pattern(graph, planted, copies=3, seed=5)
    best = float("inf")
    for _ in range(CALIBRATION_ROUNDS):
        # The probe is pinned to the pruned Stage-1 mode: it is a fixed
        # machine-speed yardstick, and this exact workload (σ=2, pruned —
        # the pre-exactness default) is what every committed
        # calibration_seconds was measured with, so the normalisation stays
        # comparable across commits.
        miner = SkinnyMine(graph, min_support=2, stage1_mode="pruned")
        started = time.perf_counter()
        miner.mine(4, 1)
        best = min(best, time.perf_counter() - started)
    return best


def _measure():
    # Calibrate both before and after the scenario and average the two: on
    # shared CI runners the machine's effective speed can drift between
    # phases, and sandwiching the scenario makes the calibration estimate
    # track the conditions the scenario actually ran under instead of a
    # possibly faster (or slower) window on one side of it.
    calibration_before = _calibration_seconds()
    graph = build_scenario_graph()
    miner = SkinnyMine(graph, min_support=SCENARIO["min_support"])
    started = time.perf_counter()
    patterns = miner.mine(SCENARIO["length"], SCENARIO["delta"])
    total = time.perf_counter() - started
    calibration = (calibration_before + _calibration_seconds()) / 2
    report = miner.last_report
    stats = report.level_statistics
    levelgrow_seconds = report.levelgrow_seconds
    phase_seconds = {
        "canonical": stats.canonical_seconds,
        "invariant": stats.invariant_seconds,
        "probe": stats.probe_seconds,
    }
    return {
        "scenario": SCENARIO,
        "calibration_seconds": calibration,
        "diammine_seconds": report.diammine_seconds,
        "levelgrow_seconds": levelgrow_seconds,
        "total_seconds": total,
        "num_diameters": report.num_diameters,
        "num_patterns": len(patterns),
        "candidates_generated": stats.candidates_generated,
        # The emission-fast-path phase split (ISSUE 5): wall-clock per phase
        # plus its share of Stage 2, and the fast-path counters.
        "phase_seconds": phase_seconds,
        "phase_shares": {
            phase: seconds / levelgrow_seconds if levelgrow_seconds else 0.0
            for phase, seconds in phase_seconds.items()
        },
        "fast_path_counters": {
            "canonical_incremental_hits": stats.canonical_incremental_hits,
            "invariant_cache_hits": stats.invariant_cache_hits,
            "probes_batched": stats.probes_batched,
        },
        "pattern_set_sha256": pattern_set_sha256(patterns),
    }


def test_levelgrow_scaling_no_regression(benchmark):
    committed = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else None
    )

    fresh = run_once(benchmark, _measure)
    normalised = fresh["levelgrow_seconds"] / fresh["calibration_seconds"]
    print(
        f"\nlevelgrow scaling (l={SCENARIO['length']}, δ={SCENARIO['delta']}, "
        f"σ={SCENARIO['min_support']}): {fresh['num_patterns']} patterns in "
        f"{fresh['levelgrow_seconds']:.2f}s Stage 2 "
        f"(calibration {fresh['calibration_seconds']:.3f}s, "
        f"normalised {normalised:.1f}×; phase shares "
        + ", ".join(
            f"{phase} {fresh['phase_shares'][phase]:.0%}" for phase in PHASES
        )
        + ")"
    )

    # The fresh measurement always lands in the sidecar: CI's main-only
    # history step appends it to the artifact ledger (append_bench_history).
    LATEST_PATH.write_text(
        json.dumps(fresh, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    if os.environ.get("BENCH_UPDATE"):
        record = dict(fresh)
        if committed is not None:
            # The large-graph data-plane block is refreshed by its own
            # test; carry it through verbatim here.
            if "large_graph" in committed:
                record["large_graph"] = committed["large_graph"]
            if "pre_table_engine" in committed:
                record["pre_table_engine"] = committed["pre_table_engine"]
                baseline_stage_two = committed["pre_table_engine"].get(
                    "levelgrow_seconds"
                )
                if baseline_stage_two:
                    record["speedup_vs_pre_table_engine"] = round(
                        baseline_stage_two / fresh["levelgrow_seconds"], 1
                    )
            history = committed.get("history") or []
            if isinstance(history, dict):  # pre-PR-5 notes format
                history = [
                    {"id": key, "note": note} for key, note in sorted(history.items())
                ]
            record["history"] = list(history)
        BASELINE_PATH.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return

    assert committed is not None, (
        f"no committed baseline at {BASELINE_PATH}; "
        "run with BENCH_UPDATE=1 to create it"
    )
    assert fresh["num_patterns"] == committed["num_patterns"], (
        fresh["num_patterns"],
        committed["num_patterns"],
    )
    assert fresh["pattern_set_sha256"] == committed["pattern_set_sha256"], (
        "mined pattern set differs from the committed baseline — "
        "a behavioural change, not a perf regression"
    )
    committed_normalised = (
        committed["levelgrow_seconds"] / committed["calibration_seconds"]
    )
    budget = committed_normalised * (1 + REGRESSION_BUDGET)
    assert normalised <= budget, (
        f"LevelGrow regressed: normalised runtime {normalised:.1f}× calibration "
        f"exceeds committed {committed_normalised:.1f}× by more than "
        f"{REGRESSION_BUDGET:.0%} (budget {budget:.1f}×)"
    )

    # Phase gate: each phase's calibration-normalised time independently,
    # so a canonicalisation regression cannot hide behind a verification
    # win.  Baselines predating the phase split skip the check.
    committed_phases = committed.get("phase_seconds")
    if committed_phases:
        for phase in PHASES:
            fresh_phase = fresh["phase_seconds"][phase] / fresh["calibration_seconds"]
            committed_phase = (
                committed_phases[phase] / committed["calibration_seconds"]
            )
            phase_budget = (
                committed_phase * (1 + REGRESSION_BUDGET) + PHASE_NOISE_FLOOR
            )
            assert fresh_phase <= phase_budget, (
                f"Stage-2 {phase} phase regressed: normalised {fresh_phase:.2f}× "
                f"exceeds committed {committed_phase:.2f}× by more than "
                f"{REGRESSION_BUDGET:.0%} + {PHASE_NOISE_FLOOR} noise floor"
            )


def _measure_large():
    """End-to-end mine plus data-plane stats on the 10⁵-edge scenario."""
    calibration_before = _calibration_seconds()
    graph = build_large_scenario_graph()

    # Freeze cost and footprint of the CSR view at data scale — the price
    # the engine pays once per (transaction, generation) to make every
    # subsequent scan array-backed (docs/DATA_PLANE.md).
    started = time.perf_counter()
    frozen = CSRGraph.from_labeled(graph)
    freeze_seconds = time.perf_counter() - started

    miner = SkinnyMine(
        graph,
        min_support=LARGE_SCENARIO["min_support"],
        stage1_mode=LARGE_SCENARIO["stage1_mode"],
    )
    started = time.perf_counter()
    patterns = miner.mine(LARGE_SCENARIO["length"], LARGE_SCENARIO["delta"])
    total = time.perf_counter() - started
    calibration = (calibration_before + _calibration_seconds()) / 2
    report = miner.last_report
    return {
        "scenario": LARGE_SCENARIO,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "freeze_seconds": freeze_seconds,
        "csr_bytes": frozen.memory_bytes(),
        "calibration_seconds": calibration,
        "diammine_seconds": report.diammine_seconds,
        "levelgrow_seconds": report.levelgrow_seconds,
        "total_seconds": total,
        "num_diameters": report.num_diameters,
        "num_patterns": len(patterns),
        "pattern_set_sha256": pattern_set_sha256(patterns),
    }


def test_large_graph_data_plane(benchmark):
    committed = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else None
    )
    committed_large = (committed or {}).get("large_graph")

    fresh = run_once(benchmark, _measure_large)
    normalised = fresh["total_seconds"] / fresh["calibration_seconds"]
    print(
        f"\nlarge-graph data plane: |V|={fresh['num_vertices']} "
        f"|E|={fresh['num_edges']} frozen in {fresh['freeze_seconds']:.2f}s "
        f"({fresh['csr_bytes'] / 1e6:.1f} MB CSR), mined "
        f"{fresh['num_patterns']} patterns in {fresh['total_seconds']:.2f}s "
        f"(normalised {normalised:.1f}×)"
    )

    # Scale floor: the scenario must stay in the 10⁵-edge range the paper
    # mines, or the gate stops meaning anything.
    assert fresh["num_edges"] >= MIN_LARGE_EDGES, fresh["num_edges"]
    # All injected copies must be recovered (pattern identity below pins
    # the exact set once a baseline exists).
    assert fresh["num_patterns"] > 0

    if os.environ.get("BENCH_UPDATE"):
        if committed is not None:
            record = dict(committed)
            record["large_graph"] = fresh
            BASELINE_PATH.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return

    if committed_large is None:
        return  # no committed block yet: completion + scale floor gate only
    assert fresh["num_patterns"] == committed_large["num_patterns"], (
        fresh["num_patterns"],
        committed_large["num_patterns"],
    )
    assert fresh["pattern_set_sha256"] == committed_large["pattern_set_sha256"], (
        "large-graph mined pattern set differs from the committed baseline"
    )
    committed_normalised = (
        committed_large["total_seconds"] / committed_large["calibration_seconds"]
    )
    budget = committed_normalised * (1 + REGRESSION_BUDGET)
    assert normalised <= budget, (
        f"large-graph mine regressed: normalised {normalised:.1f}× exceeds "
        f"committed {committed_normalised:.1f}× by more than "
        f"{REGRESSION_BUDGET:.0%} (budget {budget:.1f}×)"
    )
