"""Telemetry overhead: the tracer must be free when disabled, cheap when enabled.

The ``repro.obs`` spans sit inside the mining hot path (per Stage-1 ladder
rung, per Stage-2 level), so the instrumentation itself has to be provably
cheap or the observability PR would quietly tax every miner.  Two gates:

* **disabled mode** — mining with the default ``NULL_TRACER`` versus mining
  with an *enabled* tracer on the same scenario.  The disabled run must not
  be slower than ``enabled`` (sanity) and the enabled run may cost at most
  ``OVERHEAD_BUDGET`` (3%) plus a small absolute epsilon over the disabled
  one, with a byte-identical pattern set — tracing never changes results.
  Because the disabled path *is* the instrumented production path, this
  bounds the full telemetry tax end-to-end.
* **no-op span micro-bench** — the disabled ``Tracer.span()`` context
  manager must stay within a small constant factor of an empty function
  call; accidental allocation or clock reads on that path would show up as
  a 100x ratio.

The measured numbers are recorded to ``BENCH_obs.json`` next to this file;
the headline overhead ratio is also noted in ``BENCH_levelgrow.json``'s
history (entry ``pr6_telemetry``).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from conftest import run_once
from test_levelgrow_scaling import pattern_set_sha256

from repro.core.skinnymine import SkinnyMine
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)
from repro.obs import Tracer

LENGTH = 4
DELTA = 1
MIN_SUPPORT = 2
ROUNDS = 5
OVERHEAD_BUDGET = 0.03  # enabled tracing may cost at most 3% extra latency
JITTER_EPSILON_SECONDS = 0.02

BASELINE_PATH = Path(__file__).parent / "BENCH_obs.json"


def _scenario_graph():
    """The quick profile scenario (same as ``profile_levelgrow.py --quick``)."""
    graph = erdos_renyi_graph(80, 2.0, 8, seed=3)
    planted = random_skinny_pattern(4, 1, 6, 8, seed=4)
    inject_pattern(graph, planted, copies=3, seed=5)
    return graph


def _timed_mine(graph, tracer):
    samples = []
    patterns = None
    for _ in range(ROUNDS):
        miner = SkinnyMine(graph, min_support=MIN_SUPPORT, tracer=tracer)
        started = time.perf_counter()
        patterns = miner.mine(LENGTH, DELTA)
        samples.append(time.perf_counter() - started)
        if tracer is not None:
            tracer.drain()  # don't let span trees accumulate across rounds
    return patterns, samples


def _measure():
    graph = _scenario_graph()
    # Warm-up: JIT-free Python still benefits from warmed allocator/caches.
    _timed_mine(graph, None)

    disabled_patterns, disabled_samples = _timed_mine(graph, None)
    tracer = Tracer()
    enabled_patterns, enabled_samples = _timed_mine(graph, tracer)

    disabled_sha = pattern_set_sha256(disabled_patterns)
    enabled_sha = pattern_set_sha256(enabled_patterns)
    return {
        "scenario": {
            "background": {"num_vertices": 80, "avg_degree": 2.0, "num_labels": 8, "seed": 3},
            "planted": "random_skinny_pattern(4, 1, 6, 8, seed=4) x3 (seed=5)",
            "length": LENGTH,
            "delta": DELTA,
            "min_support": MIN_SUPPORT,
        },
        "rounds": ROUNDS,
        "num_patterns": len(disabled_patterns),
        "pattern_set_sha256": disabled_sha,
        "enabled_pattern_set_sha256": enabled_sha,
        "disabled_best_seconds": min(disabled_samples),
        "disabled_median_seconds": statistics.median(disabled_samples),
        "enabled_best_seconds": min(enabled_samples),
        "enabled_median_seconds": statistics.median(enabled_samples),
        "overhead_ratio_best": min(enabled_samples) / min(disabled_samples),
    }


def test_tracing_overhead_within_budget(benchmark):
    result = run_once(benchmark, _measure)

    BASELINE_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"\ntracing overhead (l={LENGTH}, δ={DELTA}, "
        f"{result['num_patterns']} patterns): "
        f"disabled best {result['disabled_best_seconds'] * 1000:.3f} ms, "
        f"enabled best {result['enabled_best_seconds'] * 1000:.3f} ms, "
        f"ratio {result['overhead_ratio_best']:.3f}"
    )

    # Tracing must never change what gets mined.
    assert result["enabled_pattern_set_sha256"] == result["pattern_set_sha256"]

    budget = (
        result["disabled_best_seconds"] * (1 + OVERHEAD_BUDGET)
        + JITTER_EPSILON_SECONDS
    )
    assert result["enabled_best_seconds"] <= budget, result


def test_noop_span_cost_is_bounded(benchmark):
    """Disabled span() must stay within ~15x of an empty call (no clock reads)."""
    from repro.obs import NULL_TRACER

    def noop():
        pass

    def baseline(iterations):
        started = time.perf_counter()
        for _ in range(iterations):
            noop()
        return time.perf_counter() - started

    def traced(iterations):
        span = NULL_TRACER.span
        started = time.perf_counter()
        for _ in range(iterations):
            with span("op"):
                pass
        return time.perf_counter() - started

    def measure():
        iterations = 100_000
        baseline(iterations), traced(iterations)  # warm-up
        base = min(baseline(iterations) for _ in range(3))
        cost = min(traced(iterations) for _ in range(3))
        return {
            "iterations": iterations,
            "baseline_seconds": base,
            "noop_span_seconds": cost,
            "ratio": cost / base if base else float("inf"),
        }

    result = run_once(benchmark, measure)
    print(
        f"\nno-op span cost: {result['noop_span_seconds'] * 1e9 / result['iterations']:.1f} ns"
        f"/span, ratio {result['ratio']:.1f}x over an empty call"
    )
    assert result["noop_span_seconds"] <= result["baseline_seconds"] * 15 + 0.01, result
