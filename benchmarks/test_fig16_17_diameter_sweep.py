"""E8 — Figures 16-17: effect of the diameter constraint l on the two stages.

The paper fixes |V| = 10,000, deg = 3, f = 10, δ = 2, σ = 2 and sweeps the
length constraint l from 2 to 18, reporting for each l the runtime and the
number of patterns of DiamMine (Figure 16) and LevelGrow (Figure 17).  Key
shapes to reproduce:

* many more short frequent paths than long ones (the pattern count drops
  sharply as l grows);
* DiamMine's runtime grows in a step up to the largest power of two below l
  and then plateaus (the Reducibility discussion);
* LevelGrow's runtime is roughly proportional to the number of patterns it
  outputs (the Continuity discussion).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.reporting import print_figure_series
from repro.core import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_labeled_path

NUM_VERTICES = 250
NUM_LABELS = 10
DELTA = 2
MIN_SUPPORT = 4
LENGTHS = tuple(range(2, 10))


def _build_graph():
    graph = erdos_renyi_graph(NUM_VERTICES, 2.0, NUM_LABELS, seed=123)
    # Plant a few long paths so the upper end of the sweep is populated.
    for seed in (5, 6):
        planted = random_labeled_path(10, NUM_LABELS, seed=seed)
        inject_pattern(graph, planted, copies=4, seed=seed + 10)
    return graph


def _sweep():
    graph = _build_graph()
    miner = SkinnyMine(
        graph, min_support=MIN_SUPPORT, max_patterns_per_diameter=60
    )
    diammine_runtime, diammine_counts = [], []
    levelgrow_runtime, levelgrow_counts = [], []
    for length in LENGTHS:
        patterns = miner.mine(length, DELTA)
        report = miner.last_report
        diammine_runtime.append((length, report.diammine_seconds))
        diammine_counts.append((length, report.num_diameters))
        levelgrow_runtime.append((length, report.levelgrow_seconds))
        levelgrow_counts.append((length, len(patterns)))
    return diammine_runtime, diammine_counts, levelgrow_runtime, levelgrow_counts


def test_diameter_constraint_sweep(benchmark):
    diammine_runtime, diammine_counts, levelgrow_runtime, levelgrow_counts = run_once(
        benchmark, _sweep
    )
    print_figure_series(
        "Figure 16: DiamMine runtime and #frequent paths vs l",
        {"runtime (s)": diammine_runtime, "number of paths": diammine_counts},
        note=f"|V|={NUM_VERTICES}, deg=2.2, f={NUM_LABELS}, sigma={MIN_SUPPORT}",
    )
    print_figure_series(
        "Figure 17: LevelGrow runtime and #patterns vs l (delta=2)",
        {"runtime (s)": levelgrow_runtime, "number of patterns": levelgrow_counts},
    )

    counts = dict(diammine_counts)
    # Far more short frequent paths than long ones.
    assert counts[2] > counts[8]
    assert counts[2] > counts[max(LENGTHS)]
    # LevelGrow output shrinks along with the diameter count.
    grow_counts = dict(levelgrow_counts)
    assert grow_counts[2] >= grow_counts[max(LENGTHS)]
    # Runtime sanity: every sweep point completed and produced a measurement.
    assert len(diammine_runtime) == len(LENGTHS)
    assert all(seconds >= 0 for _, seconds in levelgrow_runtime)
