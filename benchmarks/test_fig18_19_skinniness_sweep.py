"""E9 — Figures 18-19: effect of the skinniness bound δ on LevelGrow.

The paper fixes the diameter constraint (l = 20 at their scale) and sweeps
δ from 0 to 6 on a 200k-vertex graph with 250 injected patterns, reporting
LevelGrow's runtime and pattern count (Figure 18) and the size of the largest
pattern found (Figure 19).  Shapes to reproduce:

* runtime and pattern count grow with δ (roughly linearly for small δ, with a
  jump when δ becomes large enough to absorb the injected patterns' full
  width);
* the largest pattern size grows monotonically with δ and saturates at the
  injected pattern size.
"""

from __future__ import annotations

from conftest import MIN_SUPPORT, run_once

from repro.analysis.distributions import largest_pattern_size
from repro.analysis.reporting import print_figure_series
from repro.core import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern

NUM_VERTICES = 500
NUM_LABELS = 100
TARGET_LENGTH = 8
DELTAS = (0, 1, 2, 3)
INJECTED_COPIES = 3


def _build_graph():
    graph = erdos_renyi_graph(NUM_VERTICES, 3.0, NUM_LABELS, seed=77)
    # Injected patterns are wide (delta = 3) so the sweep has something to
    # gain at every step, mirroring the paper's delta = 6 injected patterns.
    planted = random_skinny_pattern(
        TARGET_LENGTH, 3, TARGET_LENGTH + 1 + 9, NUM_LABELS, seed=78
    )
    inject_pattern(graph, planted, copies=INJECTED_COPIES, seed=79)
    return graph, planted


def _sweep():
    graph, planted = _build_graph()
    miner = SkinnyMine(graph, min_support=MIN_SUPPORT)
    runtimes, counts, largest = [], [], []
    for delta in DELTAS:
        patterns = miner.mine(TARGET_LENGTH, delta)
        report = miner.last_report
        runtimes.append((delta, report.levelgrow_seconds))
        counts.append((delta, len(patterns)))
        largest.append((delta, largest_pattern_size(patterns)[1]))
    return planted, runtimes, counts, largest


def test_skinniness_sweep(benchmark):
    planted, runtimes, counts, largest = run_once(benchmark, _sweep)
    print_figure_series(
        "Figure 18: LevelGrow runtime and #patterns vs skinniness bound delta",
        {"runtime (s)": runtimes, "number of patterns": counts},
        note=f"l={TARGET_LENGTH}, sigma={MIN_SUPPORT}, injected pattern |E|={planted.num_edges()}",
    )
    print_figure_series(
        "Figure 19: largest pattern size |E| vs delta",
        {"largest pattern size": largest},
    )

    count_by_delta = dict(counts)
    largest_by_delta = dict(largest)
    # Pattern count and largest size never shrink as delta grows.
    assert count_by_delta[DELTAS[-1]] >= count_by_delta[0]
    assert all(
        largest_by_delta[DELTAS[i + 1]] >= largest_by_delta[DELTAS[i]]
        for i in range(len(DELTAS) - 1)
    )
    # At delta = 0 only bare diameters (size l) are possible.
    assert largest_by_delta[0] == TARGET_LENGTH
    # At the largest delta the miner reaches (at least) the injected pattern size.
    assert largest_by_delta[DELTAS[-1]] >= planted.num_edges() - 1
