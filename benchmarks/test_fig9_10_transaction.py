"""E4 — Figures 9-10: graph-transaction setting vs SpiderMine and ORIGAMI.

The paper builds a 10-graph database, injects 5 skinny patterns (Figure 9)
and then 120 additional small patterns (Figure 10), and compares the pattern
size distributions of SkinnyMine, SpiderMine and ORIGAMI.  Expected shape:

* SkinnyMine reports the largest patterns (the injected skinny ones);
* SpiderMine reports medium-to-large patterns;
* ORIGAMI returns a scattered sample that shifts to small patterns once the
  many small injected patterns appear (Figure 10).
"""

from __future__ import annotations

import pytest
from conftest import TRANSACTION_SCALE, run_once

from repro.analysis.distributions import size_distribution
from repro.analysis.reporting import print_figure_series
from repro.baselines import OrigamiSampler, SpiderMiner
from repro.core import SkinnyMine, SupportMeasure
from repro.datasets.synthetic import build_transaction_dataset
from repro.graph.paths import diameter


def _run(num_small: int):
    dataset = build_transaction_dataset(
        seed=9,
        scale=TRANSACTION_SCALE,
        num_small=num_small,
        skinny_support=5,
        small_support=5,
    )
    target_length = min(diameter(p) for p in dataset.skinny_patterns)
    skinny = SkinnyMine(dataset.graphs, min_support=4).mine(
        target_length, delta=2, closed_only=True
    )
    spider = SpiderMiner(
        dataset.graphs,
        min_support=4,
        top_k=10,
        radius=1,
        d_max=4,
        num_seeds=150,
        seed=3,
        support_measure=SupportMeasure.TRANSACTIONS,
    ).mine()
    origami = OrigamiSampler(
        dataset.graphs, min_support=4, num_walks=40, alpha=0.7, seed=5
    ).mine()
    return dataset, {"SkinnyMine": skinny, "SpiderMine": spider, "ORIGAMI": origami}


@pytest.mark.parametrize(
    "figure,num_small",
    [("Figure 9 (fewer small patterns injected)", 0),
     ("Figure 10 (more small patterns injected)", 120)],
)
def test_transaction_setting_distributions(benchmark, figure, num_small):
    dataset, results = run_once(benchmark, _run, num_small)

    series = {
        miner: size_distribution(miner, patterns).as_series()
        for miner, patterns in results.items()
    }
    print_figure_series(figure, series, note=f"scale x{TRANSACTION_SCALE}, 10 transactions")

    skinny_sizes = size_distribution("SkinnyMine", results["SkinnyMine"])
    origami_sizes = size_distribution("ORIGAMI", results["ORIGAMI"])
    injected_size = max(p.num_vertices() for p in dataset.skinny_patterns)

    # SkinnyMine reaches the injected skinny pattern sizes.
    assert skinny_sizes.max_size() >= min(
        injected_size, dataset.skinny_patterns[0].num_vertices()
    ) - 2
    # ORIGAMI's sample does not dominate at the large end: its largest pattern
    # is no larger than SkinnyMine's.
    assert origami_sizes.max_size() <= skinny_sizes.max_size()
