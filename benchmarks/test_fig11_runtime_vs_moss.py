"""E5 — Figure 11: runtime of SkinnyMine vs MoSS on low-degree graphs.

The paper lowers the average degree to 2 (f = 70 labels) so that MoSS — a
complete miner — can finish at all, and plots runtime against graph size
|V| from 100 to 500.  The expected shape: both curves grow, MoSS grows much
faster than SkinnyMine (at the paper's scale MoSS is ~5-10x slower at
|V| = 500).
"""

from __future__ import annotations

import time

from conftest import MIN_SUPPORT, run_once

from repro.analysis.reporting import print_figure_series
from repro.baselines import MossMiner
from repro.core import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern

#: Graph sizes swept (the paper sweeps 100..500 at degree 2).
SIZES = (100, 200, 300, 400)
TARGET_LENGTH = 6
NUM_LABELS = 70
#: Per-size wall-clock budget handed to MoSS (the complete miner); standing in
#: for the paper's patience limit so the sweep terminates on one CPU.
MOSS_BUDGET_SECONDS = 25.0


def _build_graph(num_vertices: int):
    graph = erdos_renyi_graph(num_vertices, 2.0, NUM_LABELS, seed=num_vertices)
    planted = random_skinny_pattern(TARGET_LENGTH, 1, TARGET_LENGTH + 3, NUM_LABELS,
                                    seed=num_vertices + 1)
    inject_pattern(graph, planted, copies=2, seed=num_vertices + 2)
    return graph


def _sweep():
    skinny_series = []
    moss_series = []
    for size in SIZES:
        graph = _build_graph(size)

        started = time.perf_counter()
        SkinnyMine(graph, min_support=MIN_SUPPORT).mine(TARGET_LENGTH, delta=2)
        skinny_series.append((size, time.perf_counter() - started))

        started = time.perf_counter()
        miner = MossMiner(
            graph,
            min_support=MIN_SUPPORT,
            max_edges=TARGET_LENGTH + 2,
            time_budget_seconds=MOSS_BUDGET_SECONDS,
        )
        miner.mine()
        moss_series.append((size, time.perf_counter() - started))
    return skinny_series, moss_series


def test_runtime_vs_moss(benchmark):
    skinny_series, moss_series = run_once(benchmark, _sweep)
    print_figure_series(
        "Figure 11: runtime (seconds) vs graph size |V|, degree 2",
        {"MoSS": moss_series, "SkinnyMine": skinny_series},
        note=f"l={TARGET_LENGTH}, delta=2, sigma={MIN_SUPPORT}, f={NUM_LABELS}, "
        f"MoSS budget {MOSS_BUDGET_SECONDS:.0f}s per size",
    )
    # Shape: the complete miner is slower than SkinnyMine at every swept size.
    for (size, moss_seconds), (_, skinny_seconds) in zip(moss_series, skinny_series):
        assert moss_seconds > skinny_seconds, f"MoSS unexpectedly faster at |V|={size}"
