"""Warm-index serving vs cold mining: the payoff of the persistent store.

The paper's direct-mining pitch (Figure 2) is that the expensive Stage 1 is
paid once, offline; the seed reproduction kept the index in memory, so every
process restart repaid it.  This benchmark measures the new disk-backed
subsystem on a Table-1 dataset:

* **cold**  — empty store: the request pays Stage 1 (DiamMine) + Stage 2;
* **warm**  — a *fresh* service over the same store directory: Stage 1 is
  served from disk with zero recomputation;
* **repeat** — the same request again: answered from the result cache.

Acceptance: warm Stage-1 cost < 20% of cold Stage-1 cost, and the repeated
request completes in < 20% of the cold total.
"""

from __future__ import annotations

import time

from conftest import GID_SCALE, MIN_SUPPORT, run_once

from repro.analysis.reporting import print_figure_series
from repro.datasets.synthetic import build_gid_dataset
from repro.index.store import DiskPatternStore
from repro.service.mining import MineRequest, MiningService

DELTA = 1


def _timed_mine(service: MiningService, request: MineRequest):
    started = time.perf_counter()
    response = service.mine(request)
    return response, time.perf_counter() - started


def _sweep(store_root):
    dataset = build_gid_dataset(1, seed=7, scale=GID_SCALE)
    length = dataset.setting.long_pattern_diameter
    request = MineRequest(length=length, delta=DELTA, min_support=MIN_SUPPORT)

    cold_service = MiningService(dataset.graph, store=DiskPatternStore(store_root))
    cold_response, cold_total = _timed_mine(cold_service, request)
    assert not cold_response.stats.served_from_store

    # A brand-new service over the same directory: simulates a process restart.
    warm_service = MiningService(dataset.graph, store=DiskPatternStore(store_root))
    warm_response, warm_total = _timed_mine(warm_service, request)
    assert warm_response.stats.served_from_store
    assert not warm_response.stats.result_cache_hit

    repeat_response, repeat_total = _timed_mine(warm_service, request)
    assert repeat_response.stats.result_cache_hit

    assert {p.canonical_form() for p in warm_response.patterns} == {
        p.canonical_form() for p in cold_response.patterns
    }
    return {
        "length": length,
        "num_patterns": len(cold_response.patterns),
        "cold_stage_one": cold_response.stats.stage_one_seconds,
        "warm_stage_one": warm_response.stats.stage_one_seconds,
        "cold_total": cold_total,
        "warm_total": warm_total,
        "repeat_total": repeat_total,
    }


def test_warm_index_latency_under_20_percent_of_cold(benchmark, tmp_path):
    result = run_once(benchmark, _sweep, tmp_path / "index-store")

    print_figure_series(
        "Index store: cold vs warm request latency "
        f"(GID 1, l={result['length']}, δ={DELTA}, σ={MIN_SUPPORT}, "
        f"{result['num_patterns']} patterns)",
        {
            "cold stage 1 (DiamMine)": [(1, result["cold_stage_one"])],
            "warm stage 1 (disk read)": [(1, result["warm_stage_one"])],
            "cold total": [(1, result["cold_total"])],
            "warm total": [(1, result["warm_total"])],
            "repeat total (result cache)": [(1, result["repeat_total"])],
        },
    )

    # Zero Stage-1 recomputation: loading from disk must be far cheaper than
    # mining — the acceptance threshold is 20%, typical measurements are <5%.
    assert result["warm_stage_one"] < 0.2 * result["cold_stage_one"], result
    # A repeated request never re-runs either stage.
    assert result["repeat_total"] < 0.2 * result["cold_total"], result
    # And the end-to-end warm path is never slower than cold.
    assert result["warm_total"] <= result["cold_total"], result
