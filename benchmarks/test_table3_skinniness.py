"""E3 — Table 3: which of the ten varied-skinniness patterns each miner captures.

The paper injects ten patterns (PID 1-10) of decreasing skinniness into a
2,000-vertex background and reports that SkinnyMine captures the most skinny
ones (PID 1-5) while SpiderMine finds the least skinny / fattest ones.  The
benchmark reproduces that contrast on the scaled series: SkinnyMine is asked
for long-diameter patterns and must recover skinnier PIDs than SpiderMine
does.
"""

from __future__ import annotations

from conftest import MIN_SUPPORT, TABLE3_SCALE, run_once

from repro.analysis.distributions import injected_pattern_recovery
from repro.analysis.reporting import print_table
from repro.baselines import SpiderMiner
from repro.core import SkinnyMine
from repro.datasets.synthetic import TABLE3_PATTERNS, build_skinniness_series
from repro.graph.paths import diameter


def _run_experiment():
    series = build_skinniness_series(seed=5, scale=TABLE3_SCALE)
    pattern_diameters = {pid: diameter(p) for pid, p in series.patterns.items()}
    # SkinnyMine mining requests: the diameters of the skinny half (PID 1-5).
    skinny_lengths = sorted({pattern_diameters[pid] for pid in (1, 2, 3, 4, 5)})
    miner = SkinnyMine(series.graph, min_support=MIN_SUPPORT)
    skinny_results = []
    for length in skinny_lengths:
        skinny_results.extend(miner.mine(length, delta=2, closed_only=True))
    spider_results = SpiderMiner(
        series.graph,
        min_support=MIN_SUPPORT,
        top_k=10,
        radius=1,
        d_max=4,
        num_seeds=100,
        seed=13,
    ).mine()
    return series, pattern_diameters, skinny_results, spider_results


def test_table3_skinniness_capture(benchmark):
    series, pattern_diameters, skinny_results, spider_results = run_once(
        benchmark, _run_experiment
    )

    skinny_recovery = injected_pattern_recovery("SkinnyMine", skinny_results, series.patterns)
    spider_recovery = injected_pattern_recovery("SpiderMine", spider_results, series.patterns)

    rows = []
    for pid, paper_vertices, paper_diameter in TABLE3_PATTERNS:
        rows.append(
            [
                pid,
                series.patterns[pid].num_vertices(),
                pattern_diameters[pid],
                "yes" if pid in skinny_recovery.recovered else "no",
                "yes" if pid in spider_recovery.recovered else "no",
            ]
        )
    print_table(
        ["PID", "|V| (scaled)", "diameter (scaled)", "SkinnyMine", "SpiderMine"],
        rows,
        title=f"Table 3 (scaled x{TABLE3_SCALE}): capture of varied-skinniness patterns "
        f"(paper sizes: |V|=60/20..60, diameters 50..30 and 8)",
    )

    # Paper outcome: SkinnyMine captures the skinny half (PID 1-5).
    skinny_half_recovered = [pid for pid in (1, 2, 3, 4, 5) if pid in skinny_recovery.recovered]
    assert len(skinny_half_recovered) >= 4

    # SpiderMine does not capture the skinniest patterns (PID 1-3): their long
    # diameters exceed what its bounded merging can assemble.
    assert all(pid not in spider_recovery.recovered for pid in (1, 2, 3))
