"""E10 — Figure 20: runtime comparison table across the five GID datasets.

The paper's Figure 20 is a table of runtimes (seconds) for SkinnyMine,
SpiderMine, SUBDUE, SEuS and MoSS on GID 1-5, with MoSS failing to finish
on GID 2, 4, 5 within five hours.  The reproduction prints the same table at
the reproduction scale, with a much smaller wall-clock budget standing in for
the five-hour cut-off, and asserts the headline ordering: SkinnyMine is the
fastest (or tied) on every dataset and the complete miner is the one that
hits the budget on the denser settings.
"""

from __future__ import annotations

import time

from conftest import COMPLETE_MINER_BUDGET, MIN_SUPPORT, run_once

from repro.analysis.reporting import print_table
from repro.baselines import MossMiner, SeusMiner, SpiderMiner, SubdueMiner
from repro.core import SkinnyMine


def _time(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def _run_all(datasets):
    rows = {}
    moss_finished = {}
    for gid, dataset in sorted(datasets.items()):
        graph = dataset.graph
        length = dataset.setting.long_pattern_diameter
        skinny_seconds = _time(
            lambda: SkinnyMine(graph, min_support=MIN_SUPPORT).mine(length, 2, closed_only=True)
        )
        spider_seconds = _time(
            lambda: SpiderMiner(graph, min_support=MIN_SUPPORT, top_k=5, radius=1,
                                d_max=4, num_seeds=60, seed=2).mine()
        )
        subdue_seconds = _time(
            lambda: SubdueMiner(graph, min_support=MIN_SUPPORT, beam_width=4,
                                iterations=6).mine()
        )
        seus_seconds = _time(lambda: SeusMiner(graph, min_support=MIN_SUPPORT).mine())
        moss = MossMiner(
            graph,
            min_support=MIN_SUPPORT,
            time_budget_seconds=COMPLETE_MINER_BUDGET,
            max_edges=length + 4,
        )
        moss_seconds = _time(moss.mine)
        rows[gid] = (skinny_seconds, spider_seconds, subdue_seconds, seus_seconds, moss_seconds)
        moss_finished[gid] = moss.completed
    return rows, moss_finished


def test_runtime_comparison_table(benchmark, gid_datasets):
    rows, moss_finished = run_once(benchmark, _run_all, gid_datasets)

    table_rows = []
    for gid, (skinny, spider, subdue, seus, moss) in sorted(rows.items()):
        moss_cell = f"{moss:.3f}" if moss_finished[gid] else f"> {COMPLETE_MINER_BUDGET:.0f} (budget)"
        table_rows.append([gid, round(skinny, 3), round(spider, 3), round(subdue, 3),
                           round(seus, 3), moss_cell])
    print_table(
        ["GID", "SkinnyMine", "SpiderMine", "SUBDUE", "SEuS", "MoSS"],
        table_rows,
        title="Figure 20: runtime comparison (seconds, scaled datasets; "
        "MoSS budget stands in for the paper's 5-hour cut-off)",
    )

    # Headline orderings from the paper's table.
    for gid, (skinny, spider, subdue, seus, moss) in rows.items():
        assert skinny <= max(spider, subdue, seus, moss), (
            f"SkinnyMine should not be the slowest miner on GID {gid}"
        )
    # The complete miner is the most expensive approach on at least one of the
    # denser settings (GID 2, 4, 5) — either by hitting the budget or by
    # consuming the largest runtime.
    dense_worst = any(
        (not moss_finished[gid]) or rows[gid][4] == max(rows[gid])
        for gid in (2, 4, 5)
    )
    assert dense_worst
