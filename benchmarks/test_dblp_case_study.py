"""E11 — Section 6.3 (DBLP, Figures 21-22): temporal collaboration patterns.

The paper runs SkinnyMine on 9,363 author-timeline graphs with frequency 2
and length constraint 20 (patterns spanning >= 20 years), finding 84,273
skinny patterns in 947 seconds, and showcases two temporal collaboration
patterns (a "rising-star" trajectory and an "early-senior" trajectory).

The reproduction mines the synthetic DBLP-style dataset (same schema) for
timeline-long skinny patterns and checks that the planted archetypes are
recovered: mined patterns must contain the year backbone with the
archetype's collaboration labels attached in the planted order.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.reporting import print_table
from repro.core import SkinnyMine
from repro.datasets.dblp import DBLPConfig, generate_dblp_dataset

CAREER_LENGTH = 12
TARGET_LENGTH = CAREER_LENGTH - 1
MIN_SUPPORT = 3


def _mine():
    config = DBLPConfig(
        num_authors=24,
        career_length=CAREER_LENGTH,
        authors_per_archetype=3,
        noise_probability=0.1,
        seed=21,
    )
    dataset = generate_dblp_dataset(config)
    miner = SkinnyMine(dataset.graphs, min_support=MIN_SUPPORT)
    patterns = miner.mine(TARGET_LENGTH, delta=1, closed_only=True)
    return dataset, miner, patterns


def _collaboration_labels_of(pattern):
    """The multiset of collaboration labels attached to the pattern's timeline."""
    return sorted(
        str(pattern.graph.label_of(v))
        for v in pattern.graph.vertices()
        if str(pattern.graph.label_of(v)) != "Y"
    )


def test_dblp_temporal_collaboration_patterns(benchmark):
    dataset, miner, patterns = run_once(benchmark, _mine)

    report = miner.last_report
    print_table(
        ["quantity", "value"],
        [
            ["author graphs", len(dataset.graphs)],
            ["length constraint", TARGET_LENGTH],
            ["frequency threshold", MIN_SUPPORT],
            ["skinny patterns found", len(patterns)],
            ["Stage I seconds", round(report.diammine_seconds, 3)],
            ["Stage II seconds", round(report.levelgrow_seconds, 3)],
        ],
        title="DBLP case study (synthetic stand-in for Section 6.3)",
    )

    # Patterns spanning the requested number of years were found.
    assert patterns
    assert all(p.diameter_length == TARGET_LENGTH for p in patterns)

    # The planted "rising-star" trajectory (Figure 21: collaborations with
    # increasingly productive authors) is visible in the mining result: some
    # pattern carries both early-career (B*/J*) and late-career (P*)
    # collaboration labels on one timeline.
    rising = [
        pattern
        for pattern in patterns
        if any(label.startswith("P") for label in _collaboration_labels_of(pattern))
        and any(label[0] in "BJ" for label in _collaboration_labels_of(pattern))
    ]
    print(f"  patterns mixing early- and late-career collaborations: {len(rising)}")
    assert rising

    # The "early-senior" trajectory (Figure 22) is also recoverable: a pattern
    # whose collaboration labels are exclusively senior/prolific.
    early_senior = [
        pattern
        for pattern in patterns
        if _collaboration_labels_of(pattern)
        and all(label[0] in "SP" for label in _collaboration_labels_of(pattern))
    ]
    print(f"  patterns with only senior/prolific collaborations: {len(early_senior)}")
    assert early_senior
