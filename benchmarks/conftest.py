"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6).  The authors ran C++ on graphs with up to 300k vertices; this
reproduction mines in pure Python, so every workload is scaled down by the
factors below while keeping the shape of each experiment (same axes, same
relative ordering of the competitors).  EXPERIMENTS.md records the mapping
from each paper table/figure to the benchmark and the measured outcome.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark uses ``benchmark.pedantic(..., rounds=1)`` — mining runs are
far too slow to repeat dozens of times, and the quantity of interest is the
printed series, not nanosecond-level timing stability.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Every test below benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)

#: Global scale factor applied to the paper's dataset sizes (see DESIGN.md).
GID_SCALE = 0.30
#: Scale for the Table 3 skinniness series.
TABLE3_SCALE = 0.18
#: Scale for the graph-transaction datasets of Figures 9-10.
TRANSACTION_SCALE = 0.12
#: Support threshold used throughout the synthetic experiments (the paper uses 2).
MIN_SUPPORT = 2

#: Wall-clock budget (seconds) given to the complete miners before they are
#: declared "did not finish" — the paper's analogue is the 5-hour cut-off.
COMPLETE_MINER_BUDGET = 20.0


@pytest.fixture(scope="session")
def gid_datasets():
    """The five Table-1 datasets (scaled), generated once per session."""
    from repro.datasets.synthetic import build_gid_dataset

    return {gid: build_gid_dataset(gid, seed=7, scale=GID_SCALE) for gid in range(1, 6)}


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
