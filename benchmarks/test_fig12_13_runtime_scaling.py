"""E6 — Figures 12-13: runtime growth vs SUBDUE and SpiderMine.

The paper sweeps the graph size (500..10,500 against SUBDUE and 1k..50k
against SpiderMine, degree 3, f = 100, sigma = 2) and shows that SkinnyMine's
runtime grows much more slowly than both.  The reproduction sweeps smaller
sizes (pure Python) but must preserve the ordering at the largest size and
the slower growth of SkinnyMine's curve.
"""

from __future__ import annotations

import time

import pytest
from conftest import MIN_SUPPORT, run_once

from repro.analysis.reporting import print_figure_series
from repro.baselines import SpiderMiner, SubdueMiner
from repro.core import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern

NUM_LABELS = 100
TARGET_LENGTH = 6
SIZES = (200, 400, 600, 800)


def _build(num_vertices: int):
    graph = erdos_renyi_graph(num_vertices, 3.0, NUM_LABELS, seed=num_vertices)
    planted = random_skinny_pattern(
        TARGET_LENGTH, 1, TARGET_LENGTH + 3, NUM_LABELS, seed=num_vertices + 1
    )
    inject_pattern(graph, planted, copies=2, seed=num_vertices + 2)
    return graph


def _time(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def _sweep_vs_subdue():
    skinny, subdue = [], []
    for size in SIZES:
        graph = _build(size)
        skinny.append(
            (size, _time(lambda: SkinnyMine(graph, min_support=MIN_SUPPORT).mine(TARGET_LENGTH, 2)))
        )
        subdue.append(
            (size, _time(lambda: SubdueMiner(graph, min_support=MIN_SUPPORT,
                                             beam_width=4, iterations=8).mine()))
        )
    return skinny, subdue


def _sweep_vs_spidermine():
    skinny, spider = [], []
    for size in SIZES:
        graph = _build(size)
        skinny.append(
            (size, _time(lambda: SkinnyMine(graph, min_support=MIN_SUPPORT).mine(TARGET_LENGTH, 2)))
        )
        spider.append(
            (size, _time(lambda: SpiderMiner(graph, min_support=MIN_SUPPORT, top_k=10,
                                             radius=1, d_max=4, num_seeds=size // 4,
                                             seed=1).mine()))
        )
    return skinny, spider


def test_runtime_vs_subdue(benchmark):
    skinny, subdue = run_once(benchmark, _sweep_vs_subdue)
    print_figure_series(
        "Figure 12: runtime (seconds) vs |V| — SkinnyMine vs SUBDUE",
        {"SUBDUE": subdue, "SkinnyMine": skinny},
        note=f"deg=3, f={NUM_LABELS}, sigma={MIN_SUPPORT}",
    )
    assert subdue[-1][1] > skinny[-1][1]


def test_runtime_vs_spidermine(benchmark):
    skinny, spider = run_once(benchmark, _sweep_vs_spidermine)
    print_figure_series(
        "Figure 13: runtime (seconds) vs |V| — SkinnyMine vs SpiderMine",
        {"SpiderMine": spider, "SkinnyMine": skinny},
        note=f"deg=3, f={NUM_LABELS}, sigma={MIN_SUPPORT}, K=10",
    )
    assert spider[-1][1] > skinny[-1][1]
    # SkinnyMine's growth from the smallest to the largest size is slower than
    # SpiderMine's growth.
    skinny_growth = skinny[-1][1] - skinny[0][1]
    spider_growth = spider[-1][1] - spider[0][1]
    assert spider_growth >= skinny_growth
