"""E12 — Section 6.3 (Sina Weibo, Figures 23-24): diffusion interaction patterns.

The paper mines the retweet-conversation dataset with length constraint 10
and frequency 2, finding 13,847 frequent skinny patterns in 806 seconds, and
showcases a 13-long 3-skinny diffusion chain in which the root user keeps
re-engaging with her followers as the tweet spreads.

The reproduction mines the synthetic conversation dataset (same schema) for
long diffusion chains and checks the showcased behaviour: a frequent skinny
pattern exists whose backbone contains the root label more than once
(the root re-engages) interleaved with follower labels.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.reporting import print_table
from repro.core import SkinnyMine
from repro.datasets.weibo import ROOT_LABEL, WeiboConfig, generate_weibo_dataset

CHAIN_LENGTH = 10
MIN_SUPPORT = 3


def _mine():
    config = WeiboConfig(
        num_conversations=24,
        planted_conversations=6,
        chain_length=CHAIN_LENGTH,
        background_retweets=20,
        seed=33,
    )
    dataset = generate_weibo_dataset(config)
    miner = SkinnyMine(dataset.graphs, min_support=MIN_SUPPORT)
    patterns = miner.mine(CHAIN_LENGTH, delta=2, closed_only=True)
    return dataset, miner, patterns


def test_weibo_diffusion_patterns(benchmark):
    dataset, miner, patterns = run_once(benchmark, _mine)

    report = miner.last_report
    print_table(
        ["quantity", "value"],
        [
            ["conversations", len(dataset.graphs)],
            ["planted diffusion chains", len(dataset.planted_conversation_ids)],
            ["length constraint", CHAIN_LENGTH],
            ["frequency threshold", MIN_SUPPORT],
            ["skinny patterns found", len(patterns)],
            ["Stage I seconds", round(report.diammine_seconds, 3)],
            ["Stage II seconds", round(report.levelgrow_seconds, 3)],
        ],
        title="Sina Weibo case study (synthetic stand-in for Section 6.3)",
    )

    assert patterns
    assert all(p.diameter_length == CHAIN_LENGTH for p in patterns)

    # Figure 24's showcased insight: the root user appears repeatedly along
    # the diffusion chain (re-engagement), surrounded by followers.
    def backbone_labels(pattern):
        return [str(pattern.graph.label_of(v)) for v in pattern.diameter]

    re_engagement = [
        pattern
        for pattern in patterns
        if backbone_labels(pattern).count(ROOT_LABEL) >= 2
        and "F" in backbone_labels(pattern)
    ]
    print(f"  patterns with root re-engagement on the backbone: {len(re_engagement)}")
    assert re_engagement
