"""E1 — Table 1 / Table 2: the five synthetic data settings (GID 1-5).

Regenerates the paper's Table 1 (dataset parameters) at the reproduction
scale and prints the realised statistics of each generated graph so the
scaled settings can be compared against the table (|V|, average degree,
label count, injected pattern shapes).
"""

from __future__ import annotations

from conftest import GID_SCALE, MIN_SUPPORT, run_once

from repro.analysis.reporting import print_table
from repro.datasets.synthetic import TABLE1_SETTINGS, TABLE2_DIFFERENCES, build_gid_dataset
from repro.graph.paths import diameter


def _generate_all():
    return {gid: build_gid_dataset(gid, seed=7, scale=GID_SCALE) for gid in range(1, 6)}


def test_table1_dataset_generation(benchmark):
    datasets = run_once(benchmark, _generate_all)

    rows = []
    for gid, dataset in sorted(datasets.items()):
        setting = dataset.setting
        graph = dataset.graph
        average_degree = 2 * graph.num_edges() / max(1, graph.num_vertices())
        long_pattern = dataset.long_patterns[0]
        rows.append(
            [
                gid,
                graph.num_vertices(),
                graph.num_edges(),
                round(average_degree, 2),
                setting.num_labels,
                len(dataset.long_patterns),
                long_pattern.num_vertices(),
                diameter(long_pattern),
                setting.long_pattern_support,
                len(dataset.short_patterns),
            ]
        )
    print_table(
        ["GID", "|V|", "|E|", "deg", "f", "m", "|V_L|", "L_d", "L_s", "n"],
        rows,
        title=f"Table 1 (scaled x{GID_SCALE}): realised dataset statistics",
    )
    print_table(
        ["pair", "difference"],
        [[pair, text] for pair, text in TABLE2_DIFFERENCES.items()],
        title="Table 2: setting differences (verbatim from the paper)",
    )

    # Shape checks: the relative contrasts of Table 2 must hold in the data.
    degree = {
        gid: 2 * d.graph.num_edges() / d.graph.num_vertices() for gid, d in datasets.items()
    }
    assert degree[2] > degree[1]
    assert degree[4] > degree[3]
    assert len(datasets[5].short_patterns) > len(datasets[2].short_patterns)
    assert TABLE1_SETTINGS[3].num_vertices > TABLE1_SETTINGS[1].num_vertices
    for dataset in datasets.values():
        assert dataset.setting.long_pattern_support >= MIN_SUPPORT
