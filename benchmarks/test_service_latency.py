"""Service-tier latency gate: p99 under concurrent mixed load.

Drives the ``tools/load_service.py`` quick scenario against a spawned
``repro serve`` subprocess: concurrent NDJSON clients in a closed loop over
a mixed skinny/path/diam-le workload, with one edge delta applied mid-load
through a control connection.  Three gates:

* **correctness is absolute** — a wrong answer (any response that is not
  byte-identical to a direct single-user ``MiningEngine.run`` at the
  generation the service reports) or any error response fails the bench
  outright, in baseline-update mode too;
* **snapshot isolation actually exercised** — the run must have served
  answers from at least two generations, i.e. the delta landed mid-load;
* **p99 latency** — the calibration-normalised p99 may exceed the
  committed ``BENCH_service.json`` baseline by at most
  ``REGRESSION_BUDGET`` (25%) plus a small absolute noise floor.

The same machine-speed probe as the LevelGrow gate normalises the timing
(service overhead is pure-Python work, so the ratio transfers across
runners).  Refresh the baseline after an intentional serving-tier change::

    BENCH_UPDATE=1 pytest benchmarks/test_service_latency.py -q

The fresh measurement always lands in ``BENCH_service.latest.json``; on
main, CI appends it to the artifact-chain ledger
(``tools/append_bench_history.py``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from conftest import run_once
from test_levelgrow_scaling import _calibration_seconds

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import load_service  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "BENCH_service.json"
LATEST_PATH = Path(__file__).parent / "BENCH_service.latest.json"
REGRESSION_BUDGET = 0.25
#: Absolute slack (in calibration units) on top of the p99 budget: p99 of a
#: few hundred requests rides on scheduler/event-loop timing that the
#: mining-speed calibration cannot fully normalise away.
NOISE_FLOOR = 0.5

#: The quick scenario (see tools/load_service.py for the full 200-client run).
SCENARIO_ARGS = [
    "--clients", "60",
    "--requests-per-client", "5",
    "--workers", "4",
    "--delta-at", "0.4",
]


def _measure():
    calibration_before = _calibration_seconds()
    args = load_service.build_parser().parse_args(SCENARIO_ARGS)
    summary = load_service.run_load(args)
    calibration = (calibration_before + _calibration_seconds()) / 2
    return {
        "scenario": summary["scenario"],
        "calibration_seconds": calibration,
        "p50_ms": summary["latency_ms"]["p50"],
        "p95_ms": summary["latency_ms"]["p95"],
        "p99_ms": summary["latency_ms"]["p99"],
        "normalised_p99": (summary["latency_ms"]["p99"] / 1000.0) / calibration,
        "throughput_rps": summary["throughput_rps"],
        "wall_seconds": summary["wall_seconds"],
        "requests": summary["requests"],
        "errors": summary["errors"],
        "error_count": summary["error_count"],
        "wrong_answers": summary["wrong_answers"],
        "served_by_generation": summary["served_by_generation"],
        "result_cache_hits": summary["result_cache_hits"],
        "delta": summary["delta"],
    }


def test_service_latency_no_regression(benchmark):
    committed = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else None
    )

    fresh = run_once(benchmark, _measure)
    print(
        f"\nservice latency ({fresh['requests']} requests, "
        f"{fresh['scenario']['clients']} clients): "
        f"p50 {fresh['p50_ms']:.1f}ms p95 {fresh['p95_ms']:.1f}ms "
        f"p99 {fresh['p99_ms']:.1f}ms "
        f"({fresh['throughput_rps']:.0f} req/s; calibration "
        f"{fresh['calibration_seconds']:.3f}s, normalised p99 "
        f"{fresh['normalised_p99']:.2f}×; generations "
        f"{fresh['served_by_generation']})"
    )

    LATEST_PATH.write_text(
        json.dumps(fresh, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # Correctness and isolation gate unconditionally — a baseline refresh
    # must never record a run with wrong answers or errors.
    assert fresh["wrong_answers"] == 0, (
        f"{fresh['wrong_answers']} answer(s) differed from the direct engine"
    )
    assert fresh["error_count"] == 0, f"error responses under load: {fresh['errors']}"
    assert len(fresh["served_by_generation"]) >= 2, (
        "the mid-load delta did not split traffic across generations: "
        f"{fresh['served_by_generation']}"
    )
    assert fresh["delta"] and fresh["delta"]["ok"], fresh["delta"]

    if os.environ.get("BENCH_UPDATE"):
        record = dict(fresh)
        if committed is not None:
            record["history"] = committed.get("history") or []
        BASELINE_PATH.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return

    assert committed is not None, (
        f"no committed baseline at {BASELINE_PATH}; "
        "run with BENCH_UPDATE=1 to create it"
    )
    budget = committed["normalised_p99"] * (1 + REGRESSION_BUDGET) + NOISE_FLOOR
    assert fresh["normalised_p99"] <= budget, (
        f"service p99 regressed: normalised {fresh['normalised_p99']:.2f}× "
        f"calibration exceeds committed {committed['normalised_p99']:.2f}× "
        f"by more than {REGRESSION_BUDGET:.0%} + {NOISE_FLOOR} noise floor"
    )
