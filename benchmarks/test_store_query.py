"""Corpus-query speedup: SQLite's indexed queries vs the JSONL full scan.

The relational backend exists so "patterns containing label X, support ≥ σ"
never pays for the patterns it does *not* return.  This gate builds one
corpus of ``TOTAL_PATTERNS`` path patterns (split across many store
entries), persists it through both backends, and times the same selective
corpus query cold on each:

* the JSONL backend must decode **every** body to answer (full scan);
* the SQLite backend filters on indexed metadata columns and must decode
  **only the matching bodies** — pinned exactly via the codec's decode
  counter, not just inferred from timing;
* the indexed query must be at least ``SPEEDUP_FLOOR``× faster than the
  scan, and both backends must return byte-identical matches.

Runs under ``-m bench`` (CI's bench-smoke job); not part of the tier-1
suite.
"""

from __future__ import annotations

import time

from repro.core.patterns import PathPattern
from repro.index.codec import decode_count
from repro.index.sqlite_store import SqlitePatternStore
from repro.index.store import DiskPatternStore, IndexEntry, StoreKey

#: Corpus size the ISSUE names: indexed lookup must win at this scale.
TOTAL_PATTERNS = 10_000
#: Entries the corpus is spread across (TOTAL_PATTERNS / ENTRIES each).
ENTRIES = 50
#: Patterns carrying the rare "needle" label (the query's target).
NEEDLE_EVERY = 500
#: Required cold-query advantage of the indexed backend over the scan.
SPEEDUP_FLOOR = 5.0
#: Timing repetitions; the minimum is compared (steadiest estimate).
ROUNDS = 3

QUERY = {"labels_contain": "needle", "min_support": 10, "order_by": "-support"}


def corpus_pattern(index: int) -> PathPattern:
    """Deterministic synthetic pattern #``index`` (no RNG: stable corpus)."""
    labels = (
        f"l{index % 17}",
        "needle" if index % NEEDLE_EVERY == 0 else f"l{(index * 7) % 23}",
        f"l{(index * 11) % 29}",
    )
    embeddings = ((0, (index, index + 1, index + 2)),)
    return PathPattern(labels, embeddings, support=index % 40 + 1)


def populate(store) -> None:
    per_entry = TOTAL_PATTERNS // ENTRIES
    for entry_index in range(ENTRIES):
        start = entry_index * per_entry
        key = StoreKey.make("bench-fp", "path", {"length": 2, "entry": entry_index})
        store.put(
            IndexEntry(
                key=key,
                patterns=[corpus_pattern(i) for i in range(start, start + per_entry)],
            )
        )


def timed_cold_query(make_store):
    """Min-of-ROUNDS cold query latency, fresh store instance per round.

    A fresh instance per round means neither backend answers from its
    in-process entry cache.
    """
    best, matches = None, None
    for _ in range(ROUNDS):
        store = make_store()
        started = time.perf_counter()
        matches = store.query(**QUERY)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        close = getattr(store, "close", None)
        if close is not None:
            close()
    return best, matches


def test_indexed_corpus_query_beats_jsonl_scan(tmp_path):
    jsonl_root = tmp_path / "jsonl"
    sqlite_root = tmp_path / "sqlite"
    populate(DiskPatternStore(jsonl_root))
    sqlite_seed = SqlitePatternStore(sqlite_root)
    populate(sqlite_seed)
    sqlite_seed.close()

    jsonl_seconds, jsonl_matches = timed_cold_query(lambda: DiskPatternStore(jsonl_root))
    decodes_before = decode_count()
    sqlite_seconds, sqlite_matches = timed_cold_query(lambda: SqlitePatternStore(sqlite_root))

    expected = len(
        [
            i
            for i in range(0, TOTAL_PATTERNS, NEEDLE_EVERY)
            if corpus_pattern(i).support >= QUERY["min_support"]
        ]
    )
    assert expected > 0
    assert len(sqlite_matches) == expected

    # Correctness first: both backends return the identical match list.
    as_dicts = lambda ms: [m.to_dict(include_pattern=True) for m in ms]  # noqa: E731
    assert as_dicts(jsonl_matches) == as_dicts(sqlite_matches)

    # The indexed path decoded only what it returned: ROUNDS cold queries,
    # each deserialising exactly the matching bodies — never the corpus.
    assert decode_count() - decodes_before == ROUNDS * expected

    speedup = jsonl_seconds / sqlite_seconds
    print(
        f"\ncorpus query over {TOTAL_PATTERNS} patterns: "
        f"jsonl scan {jsonl_seconds * 1000:.1f} ms, "
        f"sqlite indexed {sqlite_seconds * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"indexed corpus query only {speedup:.1f}x faster than the JSONL scan "
        f"(required ≥ {SPEEDUP_FLOOR}x): jsonl {jsonl_seconds:.4f}s "
        f"vs sqlite {sqlite_seconds:.4f}s"
    )
