"""Facade overhead: MiningEngine.run vs calling SkinnyMine directly, warm Stage 1.

The unified query API routes every request through constraint lookup, schema
validation, store-key construction and result ranking.  All of that must be
noise next to the actual Stage-2 growth work, or the redesign would tax the
hot path.  This benchmark times the same warm-index skinny request both ways:

* **direct** — ``SkinnyMine.mine(l, δ)`` with the diameter index already
  pre-computed (Stage 1 in memory, zero store involvement);
* **engine** — ``MiningEngine.run(Query(...))`` over a warm
  ``MemoryPatternStore`` with the result cache disabled, so every call pays
  dispatch + store lookup + growth + ranking.

Acceptance: the engine's best-of-N latency is within 5% of the direct call's
(the assertion allows a small absolute epsilon so sub-millisecond timer
jitter cannot fail the run on an otherwise idle machine).  The measured
numbers are recorded to ``BENCH_engine.json`` next to this file.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from conftest import GID_SCALE, MIN_SUPPORT, run_once

from repro.api import MiningEngine, Query
from repro.core.skinnymine import SkinnyMine
from repro.datasets.synthetic import build_gid_dataset

DELTA = 1
ROUNDS = 5
OVERHEAD_BUDGET = 0.05  # the facade may cost at most 5% extra latency
JITTER_EPSILON_SECONDS = 0.0005

BASELINE_PATH = Path(__file__).parent / "BENCH_engine.json"


def _timed(callable_, rounds):
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        samples.append(time.perf_counter() - started)
    return result, samples


def _sweep():
    dataset = build_gid_dataset(1, seed=7, scale=GID_SCALE)
    graph = dataset.graph
    length = dataset.setting.long_pattern_diameter

    miner = SkinnyMine(graph, min_support=MIN_SUPPORT)
    miner.precompute([length])  # warm Stage 1, like the engine's warm store
    direct_result, direct_samples = _timed(
        lambda: miner.mine(length, DELTA), ROUNDS
    )

    engine = MiningEngine(graph, result_cache_size=0)  # no result-cache shortcuts
    query = Query(
        "skinny", {"length": length, "delta": DELTA}, min_support=MIN_SUPPORT
    )
    engine.run(query)  # warm the Stage-1 store entry
    engine_result, engine_samples = _timed(lambda: engine.run(query), ROUNDS)

    assert engine_result.stats.served_from_store
    assert not engine_result.stats.result_cache_hit
    assert {p.canonical_form() for p in engine_result.patterns} == {
        p.canonical_form() for p in direct_result
    }

    return {
        "dataset": "GID 1",
        "length": length,
        "delta": DELTA,
        "min_support": MIN_SUPPORT,
        "rounds": ROUNDS,
        "num_patterns": len(direct_result),
        "direct_best_seconds": min(direct_samples),
        "direct_median_seconds": statistics.median(direct_samples),
        "engine_best_seconds": min(engine_samples),
        "engine_median_seconds": statistics.median(engine_samples),
        "overhead_ratio_best": min(engine_samples) / min(direct_samples),
    }


def test_engine_dispatch_overhead_under_5_percent(benchmark):
    result = run_once(benchmark, _sweep)

    BASELINE_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"\nengine dispatch overhead (GID 1, l={result['length']}, δ={DELTA}, "
        f"{result['num_patterns']} patterns): "
        f"direct best {result['direct_best_seconds'] * 1000:.3f} ms, "
        f"engine best {result['engine_best_seconds'] * 1000:.3f} ms, "
        f"ratio {result['overhead_ratio_best']:.3f}"
    )

    budget = (
        result["direct_best_seconds"] * (1 + OVERHEAD_BUDGET)
        + JITTER_EPSILON_SECONDS
    )
    assert result["engine_best_seconds"] <= budget, result
